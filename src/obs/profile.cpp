#include "obs/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "obs/jsonw.h"

namespace fsdep::obs {

namespace {

/// Mutable per-node state used only while building; folded into the
/// public ProfileNode at finalize.
struct BuildState {
  std::vector<std::vector<std::uint64_t>> samples;  ///< per-node durations
  std::vector<std::uint64_t> child_us;              ///< time attributed to children
  /// Per-node lookup of existing children by identity key.
  std::vector<std::unordered_map<std::string, std::size_t>> child_index;
};

std::string identityKey(const TraceEvent& e) {
  std::string key(e.category);
  key += '\0';
  key += e.name;
  key += '\0';
  key += e.group;
  return key;
}

std::size_t childNode(Profile& p, BuildState& b, std::size_t parent, const TraceEvent& e) {
  auto [it, inserted] = b.child_index[parent].try_emplace(identityKey(e), p.nodes.size());
  if (!inserted) return it->second;
  ProfileNode node;
  node.category = e.category;
  node.name = e.name;
  node.group = e.group;
  p.nodes.push_back(std::move(node));
  p.nodes[parent].children.push_back(it->second);
  b.samples.emplace_back();
  b.child_us.push_back(0);
  b.child_index.emplace_back();
  return it->second;
}

std::uint64_t quantileExact(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

double usToMs(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

void appendLine(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
  out += '\n';
}

/// Folded-stack frames must not contain ';' (the stack separator) or
/// whitespace (the count separator).
std::string foldedFrame(const ProfileNode& node) {
  std::string frame = node.name;
  if (!node.group.empty()) {
    frame += ':';
    frame += node.group;
  }
  for (char& c : frame) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  if (frame.empty()) frame = "_";
  return frame;
}

void renderJsonNode(JsonWriter& w, const Profile& p, std::size_t index) {
  const ProfileNode& node = p.nodes[index];
  w.beginObject();
  w.field("category", std::string_view(node.category));
  w.field("name", std::string_view(node.name));
  w.field("group", std::string_view(node.group));
  w.field("count", node.count);
  w.field("total_us", node.total_us);
  w.field("self_us", node.self_us);
  w.field("min_us", node.min_us);
  w.field("max_us", node.max_us);
  w.field("p50_us", node.p50_us);
  w.field("p95_us", node.p95_us);
  w.key("children");
  w.beginArray();
  for (const std::size_t child : node.children) renderJsonNode(w, p, child);
  w.endArray();
  w.endObject();
}

void renderFoldedNode(std::string& out, const Profile& p, std::size_t index,
                      std::string& stack) {
  const ProfileNode& node = p.nodes[index];
  const std::size_t stack_len = stack.size();
  if (index != 0) {
    if (!stack.empty()) stack += ';';
    stack += foldedFrame(node);
    if (node.self_us > 0) {
      out += stack;
      out += ' ';
      out += std::to_string(node.self_us);
      out += '\n';
    }
  }
  for (const std::size_t child : node.children) renderFoldedNode(out, p, child, stack);
  stack.resize(stack_len);
}

}  // namespace

Profile buildProfile(const std::vector<TraceEvent>& events, double wall_ms,
                     std::string command) {
  Profile p;
  p.command = std::move(command);
  p.wall_ms = wall_ms;
  p.dropped_events = Trace::droppedEvents();

  ProfileNode root;
  root.name = "root";
  p.nodes.push_back(std::move(root));
  BuildState b;
  b.samples.emplace_back();
  b.child_us.push_back(0);
  b.child_index.emplace_back();

  // Partition Complete events by tid; spans only nest within a thread.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].phase == TraceEvent::Phase::Complete) by_tid[events[i].tid].push_back(i);
  }
  std::vector<std::uint32_t> tids;
  tids.reserve(by_tid.size());
  for (const auto& [tid, _] : by_tid) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());

  struct Open {
    std::uint64_t end_us;
    std::size_t node;
  };
  for (const std::uint32_t tid : tids) {
    std::vector<std::size_t>& order = by_tid[tid];
    // RAII spans are buffered in END order, so a parent follows its
    // children. Parent-before-child needs (ts asc, dur desc), with the
    // later buffer position winning ties (zero-duration parent/child
    // pairs share ts and dur).
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const TraceEvent& ea = events[a];
      const TraceEvent& eb = events[b];
      if (ea.ts_us != eb.ts_us) return ea.ts_us < eb.ts_us;
      if (ea.dur_us != eb.dur_us) return ea.dur_us > eb.dur_us;
      return a > b;
    });
    std::vector<Open> stack;
    for (const std::size_t i : order) {
      const TraceEvent& e = events[i];
      const std::uint64_t end_us = e.ts_us + e.dur_us;
      while (!stack.empty() && end_us > stack.back().end_us) stack.pop_back();
      const std::size_t parent = stack.empty() ? 0 : stack.back().node;
      const std::size_t node = childNode(p, b, parent, e);
      ProfileNode& n = p.nodes[node];
      if (n.count == 0 || e.dur_us < n.min_us) n.min_us = e.dur_us;
      if (e.dur_us > n.max_us) n.max_us = e.dur_us;
      n.count += 1;
      n.total_us += e.dur_us;
      b.samples[node].push_back(e.dur_us);
      b.child_us[parent] += e.dur_us;
      p.event_count += 1;
      if (parent == 0) p.attributed_us += e.dur_us;
      stack.push_back({end_us, node});
    }
  }

  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    ProfileNode& n = p.nodes[i];
    n.self_us = n.total_us > b.child_us[i] ? n.total_us - b.child_us[i] : 0;
    std::sort(b.samples[i].begin(), b.samples[i].end());
    n.p50_us = quantileExact(b.samples[i], 0.50);
    n.p95_us = quantileExact(b.samples[i], 0.95);
  }
  p.nodes[0].total_us = p.attributed_us;
  p.nodes[0].self_us = 0;
  return p;
}

bool parseProfileFormat(std::string_view text, ProfileFormat& out) {
  if (text == "text") {
    out = ProfileFormat::Text;
  } else if (text == "json") {
    out = ProfileFormat::Json;
  } else if (text == "folded") {
    out = ProfileFormat::Folded;
  } else {
    return false;
  }
  return true;
}

std::string renderProfileText(const Profile& p) {
  std::string out;
  appendLine(out, "fsdep profile — %s", p.command.c_str());
  appendLine(out, "wall %.2f ms, attributed %.2f ms (%.1f%%), %llu spans, %llu dropped",
             p.wall_ms, usToMs(p.attributed_us), p.coverage() * 100.0,
             static_cast<unsigned long long>(p.event_count),
             static_cast<unsigned long long>(p.dropped_events));
  out += '\n';

  // Aggregate by (category, name) across tree positions: the classic
  // "where does the time go" table.
  struct Agg {
    std::string label;
    std::uint64_t self_us = 0;
    std::uint64_t total_us = 0;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::string, Agg> by_name;
  for (std::size_t i = 1; i < p.nodes.size(); ++i) {
    const ProfileNode& n = p.nodes[i];
    std::string label = n.category;
    if (!label.empty()) label += '/';
    label += n.name;
    Agg& a = by_name[label];
    a.label = label;
    a.self_us += n.self_us;
    a.total_us += n.total_us;
    a.count += n.count;
  }
  std::vector<const Agg*> rows;
  rows.reserve(by_name.size());
  for (const auto& [_, a] : by_name) rows.push_back(&a);
  std::sort(rows.begin(), rows.end(), [](const Agg* a, const Agg* b) {
    return a->self_us != b->self_us ? a->self_us > b->self_us : a->label < b->label;
  });
  appendLine(out, "by span (sorted by self time):");
  appendLine(out, "  %10s %10s %8s  %s", "self_ms", "total_ms", "count", "span");
  for (const Agg* a : rows) {
    appendLine(out, "  %10.3f %10.3f %8llu  %s", usToMs(a->self_us), usToMs(a->total_us),
               static_cast<unsigned long long>(a->count), a->label.c_str());
  }
  out += '\n';

  // Hottest individual tree nodes — same spans, split by attribution
  // group (scenario/component/function).
  std::vector<std::size_t> hot;
  for (std::size_t i = 1; i < p.nodes.size(); ++i) {
    if (p.nodes[i].self_us > 0) hot.push_back(i);
  }
  std::sort(hot.begin(), hot.end(), [&](std::size_t a, std::size_t b) {
    return p.nodes[a].self_us > p.nodes[b].self_us;
  });
  constexpr std::size_t kTopNodes = 30;
  if (hot.size() > kTopNodes) hot.resize(kTopNodes);
  appendLine(out, "top nodes by self time (full tree: --profile-format json):");
  appendLine(out, "  %10s %10s %8s %9s %9s  %s", "self_ms", "total_ms", "count", "p50_ms",
             "p95_ms", "node");
  for (const std::size_t i : hot) {
    const ProfileNode& n = p.nodes[i];
    std::string label = n.category;
    if (!label.empty()) label += '/';
    label += n.name;
    if (!n.group.empty()) {
      label += " [";
      label += n.group;
      label += ']';
    }
    appendLine(out, "  %10.3f %10.3f %8llu %9.3f %9.3f  %s", usToMs(n.self_us),
               usToMs(n.total_us), static_cast<unsigned long long>(n.count),
               usToMs(n.p50_us), usToMs(n.p95_us), label.c_str());
  }
  return out;
}

std::string renderProfileJson(const Profile& p) {
  JsonWriter w;
  w.beginObject();
  w.field("schema_version", std::uint64_t{1});
  w.field("command", std::string_view(p.command));
  w.field("wall_ms", p.wall_ms);
  w.field("attributed_us", p.attributed_us);
  w.field("coverage", p.coverage());
  w.field("event_count", p.event_count);
  w.field("dropped_events", p.dropped_events);
  w.key("root");
  renderJsonNode(w, p, 0);
  w.endObject();
  std::string text = w.take();
  text += '\n';
  return text;
}

std::string renderProfileFolded(const Profile& p) {
  std::string out;
  std::string stack;
  renderFoldedNode(out, p, 0, stack);
  return out;
}

std::string renderProfile(const Profile& p, ProfileFormat format) {
  switch (format) {
    case ProfileFormat::Json:
      return renderProfileJson(p);
    case ProfileFormat::Folded:
      return renderProfileFolded(p);
    case ProfileFormat::Text:
      break;
  }
  return renderProfileText(p);
}

}  // namespace fsdep::obs
