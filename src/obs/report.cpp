#include "obs/report.h"

#include <cstdio>

#include "obs/jsonw.h"
#include "obs/metrics.h"

namespace fsdep::obs {

RunReport& RunReport::global() {
  static RunReport report;
  return report;
}

void RunReport::setCommand(std::string command, std::vector<std::string> args) {
  command_ = std::move(command);
  args_ = std::move(args);
}

void RunReport::setJobs(std::uint64_t jobs) { jobs_ = jobs; }
void RunReport::setWallMillis(double wall_ms) { wall_ms_ = wall_ms; }
void RunReport::setExitCode(int code) { exit_code_ = code; }
void RunReport::setTraceDropped(std::uint64_t dropped) { trace_dropped_ = dropped; }

void RunReport::note(const std::string& key, std::uint64_t value) {
  for (Fact& fact : facts_) {
    if (fact.key == key) {
      fact.is_string = false;
      fact.number = value;
      return;
    }
  }
  facts_.push_back(Fact{key, /*is_string=*/false, value, {}});
}

void RunReport::note(const std::string& key, const std::string& value) {
  for (Fact& fact : facts_) {
    if (fact.key == key) {
      fact.is_string = true;
      fact.text = value;
      return;
    }
  }
  facts_.push_back(Fact{key, /*is_string=*/true, 0, value});
}

std::string RunReport::renderJson() const {
  JsonWriter w;
  w.beginObject();
  w.field("schema_version", static_cast<std::int64_t>(kReportSchemaVersion));
  w.field("tool", "fsdep");
  w.field("version", kFsdepVersion);
  w.field("command", std::string_view(command_));
  w.key("args");
  w.beginArray();
  for (const std::string& a : args_) w.value(std::string_view(a));
  w.endArray();
  w.field("jobs", jobs_);
  w.field("wall_ms", wall_ms_);
  w.field("exit_code", static_cast<std::int64_t>(exit_code_));
  w.field("trace_dropped_events", trace_dropped_);
  w.key("facts");
  w.beginObject();
  for (const Fact& fact : facts_) {
    if (fact.is_string) {
      w.field(fact.key, std::string_view(fact.text));
    } else {
      w.field(fact.key, fact.number);
    }
  }
  w.endObject();
  // The registry render ends with a newline; strip it before splicing.
  std::string metrics = Registry::global().renderJson();
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  w.key("metrics");
  w.rawValue(metrics);
  w.endObject();
  std::string text = w.take();
  text += '\n';
  return text;
}

bool RunReport::writeFile(const std::string& path) const {
  const std::string text = renderJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void RunReport::clear() {
  command_.clear();
  args_.clear();
  jobs_ = 0;
  wall_ms_ = 0;
  exit_code_ = 0;
  trace_dropped_ = 0;
  facts_.clear();
}

}  // namespace fsdep::obs
