// Metrics registry — pillar 2 of the observability layer (fsdep-obs).
//
// Named counters, gauges and histograms with labeled dimensions
// (scenario, component, job count, ...). All hot-path mutation is a
// relaxed atomic op on a handle obtained once; the name+labels lookup
// happens only at handle-acquisition time, so call sites cache a
// reference (function-local static or member). Handles stay valid for
// the process lifetime — instruments are never destroyed, only zeroed.
//
// This replaces the hand-rolled PipelineStats globals: the pipeline's
// counters now live here, `--stats` renders a byte-compatible text
// snapshot from them, and `--metrics out.json` dumps the whole registry
// as JSON. Reset is per-prefix so concurrent subsystems do not clobber
// each other's series.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsdep::obs {

/// Label dimensions, e.g. {{"scenario","s1"},{"component","mke2fs"}}.
/// Order-insensitive: the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Relaxed atomics: totals are exact once the
/// producing threads have joined (the pipeline always waits before a
/// snapshot is taken), and torn reads are impossible by construction.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (e.g. the worker count of the most recent run).
class Gauge {
 public:
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bound histogram. `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit overflow bucket catches the rest.
/// observe() is a short linear scan (bounds are small) plus two relaxed
/// adds — no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  /// Observations in bucket `i` (not cumulative).
  [[nodiscard]] std::uint64_t bucketValue(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket holding the target rank. Edge semantics: an empty
  /// histogram returns 0; when the rank lands in the overflow bucket
  /// the upper edge is unknown, so the estimate is max(largest finite
  /// bound, mean); a histogram with no finite bounds returns the mean.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Instrument registry. Registry::global() is the process-wide instance
/// every subsystem records into; tests may build private registries.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Returns the instrument registered under (name, labels), creating
  /// it on first use. References stay valid forever.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` only matters on the creating call; later calls with the
  /// same identity return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<std::uint64_t> bounds = {});

  /// Sum of every counter whose name matches exactly, across all label
  /// sets (how --stats aggregates the per-component series).
  [[nodiscard]] std::uint64_t counterSum(std::string_view name) const;

  /// Value of one exact (name, labels) counter; 0 when absent.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name,
                                           const Labels& labels = {}) const;
  [[nodiscard]] std::uint64_t gaugeValue(std::string_view name,
                                         const Labels& labels = {}) const;

  /// Zeroes every instrument whose name starts with `prefix` ("" = all).
  /// Instruments stay registered; outstanding handles keep working.
  void reset(std::string_view prefix = {});

  /// Renders the full registry as a JSON document:
  /// {"counters":[{"name":..,"labels":{..},"value":..},..],
  ///  "gauges":[..], "histograms":[..]}
  [[nodiscard]] std::string renderJson() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fsdep::obs
