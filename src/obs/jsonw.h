// Minimal JSON emitter for the observability layer. obs sits *below*
// fsdep_support in the link order (the ThreadPool is instrumented with
// it), so it cannot use fsdep_json; trace files, metric dumps and run
// reports are small enough that an append-only writer with a comma
// stack is all we need. Output is always valid JSON: strings are
// escaped, doubles are emitted with enough digits to round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsdep::obs {

/// Appends `text` to `out` as a JSON string literal (quotes included).
void appendJsonString(std::string& out, std::string_view text);

/// Structured append-only JSON writer. Keys and values must alternate
/// inside objects; the writer inserts commas and quotes. Misuse (a value
/// with no key inside an object) is a programming error and asserts in
/// debug builds only — the emitter never throws.
class JsonWriter {
 public:
  JsonWriter() { stack_.reserve(8); }

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Starts a key inside the current object.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(std::int64_t i);
  void value(std::uint64_t u);
  void value(double d);
  void valueNull();

  /// Appends `json` verbatim as a value. The caller guarantees it is a
  /// well-formed JSON value (used to splice pre-rendered fragments).
  void rawValue(std::string_view json);

  /// key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void preValue();

  struct Frame {
    bool is_object = false;
    bool has_entries = false;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace fsdep::obs
