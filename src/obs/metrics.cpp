#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "obs/jsonw.h"

namespace fsdep::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(std::uint64_t v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double mean = static_cast<double>(sum()) / static_cast<double>(n);
  // Nearest-rank target in [1, n].
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) {
      // Overflow bucket: no upper edge to interpolate against.
      const double last_bound =
          bounds_.empty() ? 0.0 : static_cast<double>(bounds_.back());
      return std::max(last_bound, mean);
    }
    const double upper = static_cast<double>(bounds_[i]);
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
    const double within =
        static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * within;
  }
  return mean;  // unreachable when counts are consistent
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

enum Kind { kCounter, kGauge, kHistogram };

/// Canonical map key: "name" + '\0' + sorted "k=v" pairs. '\0' cannot
/// appear in a metric name, so keys never collide across dimensions.
std::string makeKey(std::string_view name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  for (const auto& [k, v] : sorted) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  return key;
}

}  // namespace

struct Registry::Impl {
  struct Entry {
    std::string name;
    Labels labels;  ///< sorted
    int kind = kCounter;
    // Exactly one of these is set, per kind. unique_ptr keeps addresses
    // stable while the map rehashes/rebalances.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu;
  std::map<std::string, Entry> entries;  ///< ordered => deterministic JSON

  Entry& lookup(std::string_view name, const Labels& labels, int kind,
                std::vector<std::uint64_t> bounds) {
    const std::string key = makeKey(name, labels);
    const std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end()) {
      Entry entry;
      entry.name = std::string(name);
      entry.labels = labels;
      std::sort(entry.labels.begin(), entry.labels.end());
      entry.kind = kind;
      switch (kind) {
        case kCounter:
          entry.counter = std::make_unique<Counter>();
          break;
        case kGauge:
          entry.gauge = std::make_unique<Gauge>();
          break;
        case kHistogram:
          entry.histogram = std::make_unique<Histogram>(std::move(bounds));
          break;
      }
      it = entries.emplace(key, std::move(entry)).first;
    }
    return it->second;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: handles outlive exit
  return *registry;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *impl_->lookup(name, labels, kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *impl_->lookup(name, labels, kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::vector<std::uint64_t> bounds) {
  return *impl_->lookup(name, labels, kHistogram, std::move(bounds)).histogram;
}

std::uint64_t Registry::counterSum(std::string_view name) const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [key, entry] : impl_->entries) {
    if (entry.kind == kCounter && entry.name == name) total += entry.counter->value();
  }
  return total;
}

std::uint64_t Registry::counterValue(std::string_view name, const Labels& labels) const {
  const std::string key = makeKey(name, labels);
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->entries.find(key);
  if (it == impl_->entries.end() || it->second.kind != kCounter) return 0;
  return it->second.counter->value();
}

std::uint64_t Registry::gaugeValue(std::string_view name, const Labels& labels) const {
  const std::string key = makeKey(name, labels);
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->entries.find(key);
  if (it == impl_->entries.end() || it->second.kind != kGauge) return 0;
  return it->second.gauge->value();
}

void Registry::reset(std::string_view prefix) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [key, entry] : impl_->entries) {
    if (entry.name.compare(0, prefix.size(), prefix) != 0) continue;
    switch (entry.kind) {
      case kCounter:
        entry.counter->reset();
        break;
      case kGauge:
        entry.gauge->reset();
        break;
      case kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

namespace {

void writeLabels(JsonWriter& w, const Labels& labels) {
  w.key("labels");
  w.beginObject();
  for (const auto& [k, v] : labels) w.field(k, std::string_view(v));
  w.endObject();
}

}  // namespace

std::string Registry::renderJson() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  JsonWriter w;
  w.beginObject();

  w.key("counters");
  w.beginArray();
  for (const auto& [key, entry] : impl_->entries) {
    if (entry.kind != kCounter) continue;
    w.beginObject();
    w.field("name", std::string_view(entry.name));
    writeLabels(w, entry.labels);
    w.field("value", entry.counter->value());
    w.endObject();
  }
  w.endArray();

  w.key("gauges");
  w.beginArray();
  for (const auto& [key, entry] : impl_->entries) {
    if (entry.kind != kGauge) continue;
    w.beginObject();
    w.field("name", std::string_view(entry.name));
    writeLabels(w, entry.labels);
    w.field("value", entry.gauge->value());
    w.endObject();
  }
  w.endArray();

  w.key("histograms");
  w.beginArray();
  for (const auto& [key, entry] : impl_->entries) {
    if (entry.kind != kHistogram) continue;
    const Histogram& h = *entry.histogram;
    w.beginObject();
    w.field("name", std::string_view(entry.name));
    writeLabels(w, entry.labels);
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("p50", h.quantile(0.50));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.key("bounds");
    w.beginArray();
    for (const std::uint64_t b : h.bounds()) w.value(b);
    w.endArray();
    w.key("buckets");
    w.beginArray();
    for (std::size_t i = 0; i < h.bucketCount(); ++i) w.value(h.bucketValue(i));
    w.endArray();
    w.endObject();
  }
  w.endArray();

  w.endObject();
  std::string text = w.take();
  text += '\n';
  return text;
}

}  // namespace fsdep::obs
