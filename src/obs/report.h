// Structured per-run reports (`--report out.json`): one JSON document
// per CLI invocation recording the version, command line, worker count,
// wall time, the full metrics registry snapshot, and any command-
// specific facts (extracted-dependency counts, the CrashCk outcome
// histogram, ...). Benchmark and CI runs diff these files instead of
// scraping stdout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fsdep::obs {

/// Reported by every run; bump on incompatible report-schema changes.
inline constexpr const char* kFsdepVersion = "0.3.0";
inline constexpr int kReportSchemaVersion = 1;

class RunReport {
 public:
  static RunReport& global();

  void setCommand(std::string command, std::vector<std::string> args);
  void setJobs(std::uint64_t jobs);
  void setWallMillis(double wall_ms);
  void setExitCode(int code);
  /// Trace-buffer saturation for the run (Trace::droppedEvents()); a
  /// non-zero value means the trace/profile under-attributes.
  void setTraceDropped(std::uint64_t dropped);

  /// Flat command-specific extras, rendered under "facts" in insertion
  /// order. Duplicate keys overwrite.
  void note(const std::string& key, std::uint64_t value);
  void note(const std::string& key, const std::string& value);

  /// Renders the report, embedding the global metrics registry.
  [[nodiscard]] std::string renderJson() const;
  bool writeFile(const std::string& path) const;

  /// Drops command/extras state (tests; the CLI builds one per process).
  void clear();

 private:
  struct Fact {
    std::string key;
    bool is_string = false;
    std::uint64_t number = 0;
    std::string text;
  };

  std::string command_;
  std::vector<std::string> args_;
  std::uint64_t jobs_ = 0;
  double wall_ms_ = 0;
  int exit_code_ = 0;
  std::uint64_t trace_dropped_ = 0;
  std::vector<Fact> facts_;
};

}  // namespace fsdep::obs
