#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/jsonw.h"
#include "obs/metrics.h"

namespace fsdep::obs {

std::atomic<bool> Trace::enabled_{false};

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::size_t> g_buffer_limit{std::size_t{1} << 18};

/// One thread's event buffer. The owning thread appends under `mu`
/// (uncontended except during stop()); the collector locks the same
/// mutex when draining. Buffers are kept alive in the registry past
/// thread exit so short-lived pool workers lose no events.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  Clock::time_point epoch = Clock::now();
};

TraceState& state() {
  static TraceState s;
  return s;
}

ThreadBuffer& localBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::vector<TraceEvent> drainEvents(bool clear) {
  std::vector<TraceEvent> all;
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    if (clear) buffer->events.clear();
  }
  std::stable_sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.tid < b.tid;
  });
  return all;
}

std::string renderTrace(const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.beginObject();
  w.key("traceEvents");
  w.beginArray();
  for (const TraceEvent& e : events) {
    w.beginObject();
    w.field("name", std::string_view(e.name));
    w.field("cat", std::string_view(e.category));
    w.field("ph", e.phase == TraceEvent::Phase::Complete ? "X" : "i");
    w.field("ts", e.ts_us);
    if (e.phase == TraceEvent::Phase::Complete) w.field("dur", e.dur_us);
    if (e.phase == TraceEvent::Phase::Instant) w.field("s", "t");
    w.field("pid", std::uint64_t{1});
    w.field("tid", std::uint64_t{e.tid});
    if (!e.args_json.empty()) {
      // args_json is a pre-escaped "key":value,... fragment.
      w.key("args");
      w.rawValue("{" + e.args_json + "}");
    }
    w.endObject();
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.endObject();
  std::string text = w.take();
  text += '\n';
  return text;
}

}  // namespace

void Trace::start() {
  TraceState& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& buffer : s.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
    s.epoch = Clock::now();
  }
  g_dropped.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

std::string Trace::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  return renderTrace(drainEvents(/*clear=*/true));
}

std::vector<TraceEvent> Trace::stopEvents() {
  enabled_.store(false, std::memory_order_relaxed);
  return drainEvents(/*clear=*/true);
}

std::string Trace::render(const std::vector<TraceEvent>& events) { return renderTrace(events); }

bool Trace::stopToFile(const std::string& path) {
  const std::string text = stop();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::uint64_t Trace::nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - state().epoch)
          .count());
}

void Trace::emit(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = localBuffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= g_buffer_limit.load(std::memory_order_relaxed)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_counter = Registry::global().counter("trace.dropped_events");
    dropped_counter.add();
    return;
  }
  buffer.events.push_back(std::move(event));
}

std::uint64_t Trace::droppedEvents() { return g_dropped.load(std::memory_order_relaxed); }

std::size_t Trace::bufferLimit() { return g_buffer_limit.load(std::memory_order_relaxed); }

void Trace::setBufferLimit(std::size_t limit) {
  g_buffer_limit.store(limit == 0 ? 1 : limit, std::memory_order_relaxed);
}

void Trace::instant(const char* category, std::string name, std::string args_json) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::Instant;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = nowMicros();
  e.args_json = std::move(args_json);
  emit(std::move(e));
}

std::vector<TraceEvent> Trace::snapshot() { return drainEvents(/*clear=*/false); }

void appendArg(std::string& args_json, std::string_view key, std::string_view value) {
  if (!args_json.empty()) args_json += ',';
  appendJsonString(args_json, key);
  args_json += ':';
  appendJsonString(args_json, value);
}

void appendArg(std::string& args_json, std::string_view key, std::uint64_t value) {
  if (!args_json.empty()) args_json += ',';
  appendJsonString(args_json, key);
  args_json += ':';
  args_json += std::to_string(value);
}

void Span::begin(const char* category, const char* name) {
  category_ = category;
  name_ = name;
  start_us_ = Trace::nowMicros();
  active_ = true;
}

void Span::noteDim(std::string_view key, std::string_view value) {
  if (key != "scenario" && key != "component" && key != "function" && key != "op") return;
  if (!group_.empty()) group_ += '/';
  group_ += value;
}

void Span::end() {
  // Tracing may have been stopped mid-span; emit() drops the event then.
  TraceEvent e;
  e.phase = TraceEvent::Phase::Complete;
  e.category = category_;
  e.name = name_;
  e.ts_us = start_us_;
  const std::uint64_t now = Trace::nowMicros();
  e.dur_us = now >= start_us_ ? now - start_us_ : 0;
  e.args_json = std::move(args_json_);
  e.group = std::move(group_);
  Trace::emit(std::move(e));
}

}  // namespace fsdep::obs
