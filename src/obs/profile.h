// Span-aggregated performance attribution — the `fsdep profile`
// engine. Consumes the raw trace events collected by Trace (no JSON
// round trip) and folds them into a hierarchical wall-time attribution
// tree: each node is a (category, name, group) span identity at a
// specific position under its parent, carrying self/total/count/min/
// max/p50/p95 statistics. The `group` dimension comes from well-known
// span args (scenario, component, function, op — see TraceEvent::group),
// so the tree reads phase → scenario → component → function without
// parsing args_json.
//
// Nesting is reconstructed per tid from (ts, dur) containment, the same
// rule Perfetto applies. RAII spans land in the buffers in END order,
// so events are re-sorted (ts asc, dur desc) to put parents before
// their children before the containment walk.
//
// Three renderers:
//   - text:   run header + per-span-name aggregate table sorted by self
//             time + top hot (name, group) nodes
//   - json:   full attribution tree (schema: docs/profile_schema.json)
//   - folded: Brendan-Gregg collapsed stacks ("a;b;c self_us"), ready
//             for any flamegraph renderer
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fsdep::obs {

/// One node of the attribution tree. Children are stored by index into
/// Profile::nodes (index 0 is the synthetic root).
struct ProfileNode {
  std::string category;
  std::string name;
  /// Attribution group: well-known span-arg values joined with '/'
  /// (e.g. "resize/resize2fs"). Empty for undimensioned spans.
  std::string group;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  ///< sum of span durations at this node
  std::uint64_t self_us = 0;   ///< total minus attributed child time
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t p50_us = 0;  ///< exact (from per-node samples), not estimated
  std::uint64_t p95_us = 0;
  std::vector<std::size_t> children;
};

/// The built attribution tree plus run-level accounting.
struct Profile {
  std::string command;             ///< CLI command the run executed
  std::vector<ProfileNode> nodes;  ///< nodes[0] is the synthetic root
  double wall_ms = 0.0;            ///< measured wall time of the run
  std::uint64_t attributed_us = 0;  ///< sum of top-level span totals
  std::uint64_t event_count = 0;    ///< Complete events aggregated
  std::uint64_t dropped_events = 0;  ///< buffer-overflow drops (see trace.h)
  /// attributed_us / wall_ms as a fraction (0..~1). The CLI wraps every
  /// command in a root "cli" span, so this is ~1.0 unless buffers
  /// saturated or spans raced stop().
  [[nodiscard]] double coverage() const {
    return wall_ms > 0.0 ? static_cast<double>(attributed_us) / (wall_ms * 1000.0) : 0.0;
  }
};

/// Aggregates `events` (as returned by Trace::stopEvents()) into an
/// attribution tree. Instant events are ignored; only Complete spans
/// carry time.
Profile buildProfile(const std::vector<TraceEvent>& events, double wall_ms,
                     std::string command);

enum class ProfileFormat { Text, Json, Folded };

/// Parses "text" | "json" | "folded". Returns false on anything else.
bool parseProfileFormat(std::string_view text, ProfileFormat& out);

std::string renderProfileText(const Profile& profile);
std::string renderProfileJson(const Profile& profile);
std::string renderProfileFolded(const Profile& profile);
std::string renderProfile(const Profile& profile, ProfileFormat format);

}  // namespace fsdep::obs
