#include "obs/jsonw.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace fsdep::obs {

void appendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonWriter::preValue() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.is_object) {
    assert(pending_key_ && "JSON object value without a key");
  } else if (top.has_entries) {
    out_ += ',';
  }
  top.has_entries = true;
  pending_key_ = false;
}

void JsonWriter::beginObject() {
  preValue();
  out_ += '{';
  stack_.push_back(Frame{/*is_object=*/true, /*has_entries=*/false});
}

void JsonWriter::endObject() {
  assert(!stack_.empty() && stack_.back().is_object);
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::beginArray() {
  preValue();
  out_ += '[';
  stack_.push_back(Frame{/*is_object=*/false, /*has_entries=*/false});
}

void JsonWriter::endArray() {
  assert(!stack_.empty() && !stack_.back().is_object);
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back().is_object && !pending_key_);
  if (stack_.back().has_entries) out_ += ',';
  stack_.back().has_entries = true;
  appendJsonString(out_, name);
  out_ += ':';
  pending_key_ = true;
  // preValue() must not add another comma for this entry.
  stack_.back().has_entries = true;
}

void JsonWriter::value(std::string_view s) {
  preValue();
  appendJsonString(out_, s);
}

void JsonWriter::value(bool b) {
  preValue();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(std::int64_t i) {
  preValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, i);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t u) {
  preValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
  out_ += buf;
}

void JsonWriter::value(double d) {
  preValue();
  if (!std::isfinite(d)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
}

void JsonWriter::valueNull() {
  preValue();
  out_ += "null";
}

void JsonWriter::rawValue(std::string_view json) {
  preValue();
  out_ += json;
}

}  // namespace fsdep::obs
