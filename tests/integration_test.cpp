// End-to-end assertions tying the whole reproduction together: the
// headline claims of the paper's abstract must hold on this repository.
#include <gtest/gtest.h>

#include "corpus/pipeline.h"
#include "model/serialization.h"
#include "study/bug_study.h"
#include "study/coverage.h"
#include "tools/condocck.h"
#include "tools/conhandleck.h"

namespace fsdep {
namespace {

TEST(Abstract, SixtyFourDependenciesAtLowFalsePositiveRate) {
  // "Our preliminary prototype is able to extract 64 multi-level
  //  dependencies with a low false positive rate (7.8%)."
  const corpus::Table5Result result = corpus::runTable5();
  EXPECT_EQ(result.unique_score.totalExtracted(), 64);
  EXPECT_EQ(result.unique_score.totalFalsePositives(), 5);
  const double fp_rate = 5.0 / 64.0;
  EXPECT_NEAR(fp_rate, 0.078, 0.001);
}

TEST(Abstract, TwelveDocIssuesAndOneBadHandling) {
  // "we have identified 12 inaccurate documentation issues ... and one
  //  unexpected configuration handling case where resize2fs may corrupt
  //  the file system."
  EXPECT_EQ(tools::runCorpusDocCheck().issues.size(), 12u);
  EXPECT_EQ(tools::runCorpusHandleCheck().countOf(tools::HandleOutcome::Corruption), 1);
}

TEST(Abstract, NinetySevenPercentCrossComponent) {
  // "The majority (97.0%) of issues in our dataset requires meeting such
  //  complicated dependencies to manifest."
  int bugs = 0;
  int ccd = 0;
  for (const study::ScenarioBugStats& s : study::aggregateTable3()) {
    bugs += s.bugs;
    ccd += s.with_ccd;
  }
  EXPECT_EQ(bugs, 67);
  EXPECT_NEAR(static_cast<double>(ccd) / bugs, 0.970, 0.001);
}

TEST(Pipeline, ExtractedDependenciesSerializeToJson) {
  // Paper §4.1: "The extracted dependencies are stored in JSON files
  //  which describe both the parameters and the associated constraints."
  const corpus::Table5Result result = corpus::runTable5();
  const json::Value encoded = model::toJson(result.unique_deps);
  const std::string text = json::writePretty(encoded);
  EXPECT_GT(text.size(), 1000u);

  const auto reparsed = json::parse(text);
  ASSERT_TRUE(reparsed.ok());
  const auto decoded = model::dependenciesFromJson(reparsed.value());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), result.unique_deps.size());
  for (std::size_t i = 0; i < decoded.value().size(); ++i) {
    EXPECT_EQ(decoded.value()[i].dedupKey(), result.unique_deps[i].dedupKey());
  }
}

TEST(Pipeline, TracesExplainCrossComponentFindings) {
  const corpus::Table5Result result = corpus::runTable5();
  int ccd_with_evidence = 0;
  for (const model::Dependency& dep : result.unique_deps) {
    if (dep.level() != model::DepLevel::CrossComponent) continue;
    EXPECT_FALSE(dep.bridge_field.empty()) << dep.summary();
    if (!dep.trace.empty()) ++ccd_with_evidence;
  }
  EXPECT_GT(ccd_with_evidence, 0);
}

TEST(Pipeline, EveryExtractedParamIsPlausiblyNamed) {
  const corpus::Table5Result result = corpus::runTable5();
  for (const model::Dependency& dep : result.unique_deps) {
    EXPECT_NE(dep.param.find('.'), std::string::npos) << dep.summary();
    EXPECT_FALSE(dep.id.empty());
    EXPECT_FALSE(dep.description.empty());
  }
}

TEST(Pipeline, FormattedTable5MatchesThePaperLayout) {
  const std::string table = corpus::formatTable5(corpus::runTable5());
  EXPECT_NE(table.find("mke2fs - mount - Ext4 - umount - resize2fs"), std::string::npos);
  EXPECT_NE(table.find("Total Unique"), std::string::npos);
  EXPECT_NE(table.find("7.8%"), std::string::npos);
  EXPECT_NE(table.find("9.4%"), std::string::npos);
  EXPECT_NE(table.find("16.7%"), std::string::npos);
}

}  // namespace
}  // namespace fsdep
