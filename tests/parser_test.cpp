#include <gtest/gtest.h>

#include "ast/dump.h"
#include "ast/parser.h"
#include "lex/lexer.h"

namespace fsdep::ast {
namespace {

struct Parsed {
  std::unique_ptr<TranslationUnit> tu;
  bool had_errors = false;
};

Parsed parseText(const std::string& text) {
  static SourceManager sm;
  DiagnosticEngine diags;
  const FileId file = sm.addBuffer("test.c", text);
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  Parsed result;
  result.tu = parser.parseTranslationUnit("test.c");
  result.had_errors = diags.hasErrors();
  return result;
}

const FunctionDecl* onlyFunction(const Parsed& p) {
  for (const DeclPtr& d : p.tu->decls) {
    if (d->kind() == DeclKind::Function) return static_cast<const FunctionDecl*>(d.get());
  }
  return nullptr;
}

TEST(Parser, GlobalVariable) {
  const auto p = parseText("int count = 42;");
  EXPECT_FALSE(p.had_errors);
  const VarDecl* var = static_cast<const VarDecl*>(p.tu->decls.at(0).get());
  EXPECT_EQ(var->name, "count");
  EXPECT_TRUE(var->is_global);
  ASSERT_NE(var->init, nullptr);
  EXPECT_EQ(exprToString(*var->init), "42");
}

TEST(Parser, FunctionWithParams) {
  const auto p = parseText("long add(long a, long b) { return a + b; }");
  EXPECT_FALSE(p.had_errors);
  const FunctionDecl* fn = onlyFunction(p);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->name, "add");
  ASSERT_EQ(fn->params.size(), 2u);
  EXPECT_EQ(fn->params[0]->name, "a");
  EXPECT_TRUE(fn->params[0]->is_parameter);
  EXPECT_TRUE(fn->isDefinition());
}

TEST(Parser, Prototype) {
  const auto p = parseText("int getopt(int argc, char **argv, const char *optstring);");
  EXPECT_FALSE(p.had_errors);
  const FunctionDecl* fn = onlyFunction(p);
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->isDefinition());
  EXPECT_EQ(fn->params[1]->type.pointer_depth, 2);
}

TEST(Parser, VariadicFunction) {
  const auto p = parseText("int printf(const char *fmt, ...);");
  EXPECT_FALSE(p.had_errors);
  EXPECT_TRUE(onlyFunction(p)->is_variadic);
}

TEST(Parser, StructDefinition) {
  const auto p = parseText("struct sb { unsigned int blocks; unsigned short magic, state; char name[16]; };");
  EXPECT_FALSE(p.had_errors);
  const auto* record = static_cast<const RecordDecl*>(p.tu->decls.at(0).get());
  ASSERT_EQ(record->fields.size(), 4u);
  EXPECT_EQ(record->fields[0].name, "blocks");
  EXPECT_EQ(record->fields[1].name, "magic");
  EXPECT_EQ(record->fields[2].name, "state");
  EXPECT_TRUE(record->fields[3].type.is_array);
  EXPECT_EQ(record->fields[3].type.array_size, 16);
  EXPECT_NE(record->findField("magic"), nullptr);
  EXPECT_EQ(record->findField("missing"), nullptr);
}

TEST(Parser, EnumWithValues) {
  const auto p = parseText("enum flags { A = 1, B = 2, C = 4, D };");
  EXPECT_FALSE(p.had_errors);
  const auto* e = static_cast<const EnumDecl*>(p.tu->decls.at(0).get());
  ASSERT_EQ(e->enumerators.size(), 4u);
  EXPECT_EQ(e->enumerators[0].name, "A");
  ASSERT_NE(e->enumerators[2].value_expr, nullptr);
  EXPECT_EQ(e->enumerators[3].value_expr, nullptr);
}

TEST(Parser, TypedefIntroducesTypeName) {
  const auto p = parseText("typedef unsigned int u32;\nu32 counter = 0;");
  EXPECT_FALSE(p.had_errors);
  ASSERT_EQ(p.tu->decls.size(), 2u);
  const auto* var = static_cast<const VarDecl*>(p.tu->decls.at(1).get());
  EXPECT_EQ(var->type.base, BaseTypeKind::Typedef);
  EXPECT_EQ(var->type.name, "u32");
}

TEST(Parser, PrecedenceMultiplicationBeforeAddition) {
  const auto p = parseText("int x = 1 + 2 * 3;");
  const auto* var = static_cast<const VarDecl*>(p.tu->decls.at(0).get());
  EXPECT_EQ(exprToString(*var->init), "1 + (2 * 3)");
}

TEST(Parser, PrecedenceLogicalVsBitwise) {
  const auto p = parseText("int x = a & b && c | d;");
  const auto* var = static_cast<const VarDecl*>(p.tu->decls.at(0).get());
  EXPECT_EQ(exprToString(*var->init), "(a & b) && (c | d)");
}

TEST(Parser, PrecedenceShiftVsRelational) {
  const auto p = parseText("int x = a << 2 < b;");
  const auto* var = static_cast<const VarDecl*>(p.tu->decls.at(0).get());
  EXPECT_EQ(exprToString(*var->init), "(a << 2) < b");
}

TEST(Parser, AssignmentIsRightAssociative) {
  const auto p = parseText("void f(void) { a = b = c; }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("a = (b = c)"), std::string::npos);
}

TEST(Parser, ConditionalExpression) {
  const auto p = parseText("int x = a ? b : c ? d : e;");
  const auto* var = static_cast<const VarDecl*>(p.tu->decls.at(0).get());
  EXPECT_EQ(exprToString(*var->init), "a ? b : (c ? d : e)");
}

TEST(Parser, MemberAccessChains) {
  const auto p = parseText("void f(struct sb *s) { s->inner.count = 1; }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("s->inner.count = 1"), std::string::npos);
}

TEST(Parser, CallsAndIndexing) {
  const auto p = parseText("void f(void) { g(a, b[i], h()); }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("g(a, b[i], h())"), std::string::npos);
}

TEST(Parser, CastVsParenthesizedExpr) {
  const auto p = parseText("typedef unsigned int u32;\nvoid f(void) { long a = (u32)x; long b = (x) + 1; }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(1));
  EXPECT_NE(dump.find("(u32)x"), std::string::npos);
  EXPECT_NE(dump.find("x + 1"), std::string::npos);
}

TEST(Parser, SizeofBothForms) {
  const auto p = parseText("void f(void) { long a = sizeof(int); long b = sizeof(a); }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("sizeof(int)"), std::string::npos);
  EXPECT_NE(dump.find("sizeof(a)"), std::string::npos);
}

TEST(Parser, IfElseChain) {
  const auto p = parseText(
      "void f(int x) { if (x > 1) { g(); } else if (x < 0) h(); else { k(); } }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("IfStmt x > 1"), std::string::npos);
  EXPECT_NE(dump.find("IfStmt x < 0"), std::string::npos);
}

TEST(Parser, Loops) {
  const auto p = parseText(
      "void f(void) {\n"
      "  while (a) { a = a - 1; }\n"
      "  do { b = b + 1; } while (b < 10);\n"
      "  for (int i = 0; i < 4; i = i + 1) { work(i); }\n"
      "  for (;;) { break; }\n"
      "}");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("WhileStmt a"), std::string::npos);
  EXPECT_NE(dump.find("DoWhileStmt b < 10"), std::string::npos);
  EXPECT_NE(dump.find("ForStmt cond=i < 4"), std::string::npos);
}

TEST(Parser, SwitchWithCasesAndDefault) {
  const auto p = parseText(
      "void f(int c) {\n"
      "  switch (c) {\n"
      "    case 'a': x = 1; break;\n"
      "    case 'b':\n"
      "    case 'c': x = 2; break;\n"
      "    default: usage(); break;\n"
      "  }\n"
      "}");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("SwitchStmt c"), std::string::npos);
  EXPECT_NE(dump.find("Default"), std::string::npos);
}

TEST(Parser, MultipleDeclaratorsInOneStatement) {
  const auto p = parseText("void f(void) { int a = 1, b, *c; }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("VarDecl int a = 1"), std::string::npos);
  EXPECT_NE(dump.find("VarDecl int b"), std::string::npos);
  EXPECT_NE(dump.find("VarDecl int* c"), std::string::npos);
}

TEST(Parser, ErrorRecoveryContinuesAfterBadDecl) {
  const auto p = parseText("int good1;\n;;;garbage here!!!;\nint good2;");
  EXPECT_TRUE(p.had_errors);
  EXPECT_NE(p.tu->findGlobal("good1"), nullptr);
  EXPECT_NE(p.tu->findGlobal("good2"), nullptr);
}

TEST(Parser, GotoIsRejected) {
  const auto p = parseText("void f(void) { goto out; }");
  EXPECT_TRUE(p.had_errors);
}

TEST(Parser, FindFunctionPrefersDefinition) {
  const auto p = parseText("int f(void);\nint f(void) { return 1; }");
  EXPECT_FALSE(p.had_errors);
  const FunctionDecl* fn = p.tu->findFunction("f");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->isDefinition());
}

TEST(Parser, AdjacentStringLiteralsConcatenate) {
  const auto p = parseText("void f(void) { g(\"abc\" \"def\"); }");
  EXPECT_FALSE(p.had_errors);
  const std::string dump = dumpDecl(*p.tu->decls.at(0));
  EXPECT_NE(dump.find("\"abcdef\""), std::string::npos);
}

}  // namespace
}  // namespace fsdep::ast
