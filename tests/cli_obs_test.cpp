// End-to-end checks of the CLI observability flags, driving the real
// fsdep binary (FSDEP_CLI_PATH, injected by CMake): --trace / --metrics
// / --report produce valid JSON files, instrumentation never perturbs
// stdout, and --stats keeps stdout machine-parseable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "json/json.h"

namespace fsdep {
namespace {

std::string cliPath() { return FSDEP_CLI_PATH; }

std::string tempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// Runs `command`, returning its stdout; stderr goes to `err_path`
/// (or /dev/null). Fails the test on a nonzero exit.
std::string runCli(const std::string& args, const std::string& err_path = "/dev/null") {
  const std::string command = cliPath() + " " + args + " 2>" + err_path;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) out.append(buffer, n);
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << command << "\n" << out;
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

json::Value parseOrFail(const std::string& text, const std::string& what) {
  Result<json::Value> parsed = json::parse(text);
  EXPECT_TRUE(parsed.ok()) << what << " is not valid JSON:\n" << text.substr(0, 400);
  return parsed.ok() ? std::move(parsed.value()) : json::Value();
}

TEST(CliObs, StatsKeepsStdoutPureJson) {
  const std::string out = runCli("extract --scenario s3 --json --stats");
  const json::Value parsed = parseOrFail(out, "extract --json --stats stdout");
  ASSERT_TRUE(parsed.isObject());
  EXPECT_TRUE(parsed.asObject().find("dependencies")->isArray());
}

TEST(CliObs, StatsTextKeepsItsShapeUnderTracing) {
  // Timings vary run to run, so compare the format, not the bytes: the
  // same headings must appear with and without tracing.
  const std::string plain_err = tempPath("cli_obs_stats_plain.txt");
  const std::string traced_err = tempPath("cli_obs_stats_traced.txt");
  const std::string trace = tempPath("cli_obs_stats_trace.json");
  runCli("table5 --stats", plain_err);
  runCli("table5 --stats --trace " + trace, traced_err);
  for (const std::string& path : {plain_err, traced_err}) {
    const std::string stats = slurp(path);
    EXPECT_NE(stats.find("pipeline stats: jobs="), std::string::npos) << stats;
    EXPECT_NE(stats.find("parse"), std::string::npos) << stats;
    EXPECT_NE(stats.find("analyze"), std::string::npos) << stats;
    EXPECT_NE(stats.find("extract"), std::string::npos) << stats;
    EXPECT_NE(stats.find("cache:"), std::string::npos) << stats;
    EXPECT_NE(stats.find("merges"), std::string::npos) << stats;
    EXPECT_EQ(std::count(stats.begin(), stats.end(), '\n'), 5) << stats;
  }
}

TEST(CliObs, Table5StdoutIsByteIdenticalUnderInstrumentation) {
  const std::string trace = tempPath("cli_obs_t5_trace.json");
  const std::string metrics = tempPath("cli_obs_t5_metrics.json");
  const std::string report = tempPath("cli_obs_t5_report.json");
  const std::string plain = runCli("table5 --jobs 4");
  const std::string instrumented = runCli("table5 --jobs 4 --trace " + trace +
                                          " --metrics " + metrics + " --report " + report +
                                          " --log debug");
  EXPECT_EQ(plain, instrumented);

  // --trace: a Chrome trace-event document with the promised spans.
  const json::Value trace_doc = parseOrFail(slurp(trace), "trace file");
  const json::Array& events = trace_doc.asObject().find("traceEvents")->asArray();
  EXPECT_GT(events.size(), 20u);
  std::set<std::string> analyze_pairs;
  bool saw_queue_wait = false;
  bool saw_cache = false;
  bool saw_table5 = false;
  for (const json::Value& ev : events) {
    const json::Object& e = ev.asObject();
    const std::string& name = e.find("name")->asString();
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("ts"));
    ASSERT_TRUE(e.contains("pid"));
    ASSERT_TRUE(e.contains("tid"));
    if (name == "analyze") {
      const json::Object& args = e.find("args")->asObject();
      ASSERT_TRUE(args.contains("scenario"));
      ASSERT_TRUE(args.contains("component"));
      analyze_pairs.insert(args.find("scenario")->asString() + ":" +
                           args.find("component")->asString());
    }
    if (name == "queue-wait") saw_queue_wait = true;
    if (e.find("cat")->asString() == "cache") saw_cache = true;
    if (name == "table5") saw_table5 = true;
  }
  // Table 5 runs 4 scenarios over >= 2 components each; every pair gets
  // its own analyze span.
  EXPECT_GE(analyze_pairs.size(), 8u);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_cache);
  EXPECT_TRUE(saw_table5);

  // --metrics: the registry dump carries the pipeline series.
  const json::Value metrics_doc = parseOrFail(slurp(metrics), "metrics file");
  std::set<std::string> counter_names;
  for (const json::Value& c : metrics_doc.asObject().find("counters")->asArray()) {
    counter_names.insert(c.asObject().find("name")->asString());
  }
  EXPECT_TRUE(counter_names.contains("pipeline.analyze_ns"));
  EXPECT_TRUE(counter_names.contains("pipeline.deps_extracted"));
  EXPECT_TRUE(counter_names.contains("cache.hits") || counter_names.contains("cache.misses"));

  // --report: versioned, carries the command line and the facts.
  const json::Value report_doc = parseOrFail(slurp(report), "report file");
  const json::Object& r = report_doc.asObject();
  EXPECT_EQ(r.find("tool")->asString(), "fsdep");
  EXPECT_EQ(r.find("command")->asString(), "table5");
  EXPECT_EQ(r.find("exit_code")->asInt(), 0);
  EXPECT_EQ(r.find("jobs")->asInt(), 4);
  EXPECT_GT(r.find("wall_ms")->asDouble(), 0.0);
  EXPECT_GT(r.find("facts")->asObject().find("unique_deps")->asInt(), 0);
  EXPECT_TRUE(r.find("metrics")->asObject().contains("histograms"));
}

TEST(CliObs, ProfileFlagKeepsStdoutByteIdentical) {
  const std::string profile = tempPath("cli_obs_t5_profile.txt");
  const std::string plain = runCli("table5 --jobs 4");
  const std::string profiled = runCli("table5 --jobs 4 --profile " + profile);
  EXPECT_EQ(plain, profiled);
  const std::string text = slurp(profile);
  EXPECT_NE(text.find("fsdep profile"), std::string::npos) << text;
  EXPECT_NE(text.find("by span (sorted by self time):"), std::string::npos) << text;
  EXPECT_NE(text.find("pipeline/analyze"), std::string::npos) << text;
}

TEST(CliObs, ProfileJsonTreeAttributesTheRun) {
  const std::string profile = tempPath("cli_obs_t5_profile.json");
  runCli("table5 --profile " + profile + " --profile-format json");
  const json::Value doc = parseOrFail(slurp(profile), "profile json");
  const json::Object& root = doc.asObject();
  EXPECT_EQ(root.find("schema_version")->asInt(), 1);
  EXPECT_EQ(root.find("command")->asString(), "table5");
  EXPECT_EQ(root.find("dropped_events")->asInt(), 0);
  EXPECT_GT(root.find("event_count")->asInt(), 20);
  // The cli root span makes the whole command attributable.
  EXPECT_GT(root.find("coverage")->asDouble(), 0.95);
  const json::Object& tree = root.find("root")->asObject();
  const json::Array& top = tree.find("children")->asArray();
  ASSERT_GE(top.size(), 1u);
  bool saw_cli = false;
  for (const json::Value& child : top) {
    const json::Object& node = child.asObject();
    if (node.find("category")->asString() == "cli") {
      saw_cli = true;
      EXPECT_EQ(node.find("name")->asString(), "table5");
      EXPECT_GE(node.find("children")->asArray().size(), 1u);
      EXPECT_GE(node.find("total_us")->asInt(), node.find("self_us")->asInt());
    }
  }
  EXPECT_TRUE(saw_cli);
}

TEST(CliObs, ProfileFoldedOutputHasCleanStacks) {
  const std::string profile = tempPath("cli_obs_t5_profile.folded");
  runCli("table5 --profile " + profile + " --profile-format folded");
  const std::string folded = slurp(profile);
  std::stringstream lines(folded);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string stack = line.substr(0, sp);
    EXPECT_FALSE(stack.empty()) << line;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
    ++count;
  }
  EXPECT_GE(count, 5) << folded;
  EXPECT_NE(folded.find("table5;"), std::string::npos) << folded;
}

TEST(CliObs, ProfileSubcommandWrapsAnyCommand) {
  const std::string out = runCli("profile extract --scenario s3");
  // The wrapped command's output comes first, the attribution after.
  const std::size_t deps_pos = out.find("dependencies extracted");
  const std::size_t prof_pos = out.find("fsdep profile — extract");
  ASSERT_NE(deps_pos, std::string::npos) << out;
  ASSERT_NE(prof_pos, std::string::npos) << out;
  EXPECT_LT(deps_pos, prof_pos);
}

TEST(CliObs, CacheAttributionSurvivesHoistedLabeledCounters) {
  // The per-component labeled cache counters moved out of the cache
  // mutex (serve hot-path fix); the attribution itself must not change:
  // the labeled per-component series still sum to the unlabeled totals.
  const std::string metrics = tempPath("cli_obs_cache_attr_metrics.json");
  runCli("table5 --jobs 4 --metrics " + metrics);
  const json::Value doc = parseOrFail(slurp(metrics), "metrics file");

  std::uint64_t total_hits = 0;
  std::uint64_t total_misses = 0;
  std::uint64_t labeled_hits = 0;
  std::uint64_t labeled_misses = 0;
  std::set<std::string> miss_components;
  for (const json::Value& c : doc.asObject().find("counters")->asArray()) {
    const json::Object& counter = c.asObject();
    const std::string& name = counter.find("name")->asString();
    if (name != "cache.hits" && name != "cache.misses") continue;
    const json::Object& labels = counter.find("labels")->asObject();
    const std::uint64_t value =
        static_cast<std::uint64_t>(counter.find("value")->asInt());
    if (labels.empty()) {
      (name == "cache.hits" ? total_hits : total_misses) += value;
    } else {
      ASSERT_TRUE(labels.contains("component")) << name;
      (name == "cache.hits" ? labeled_hits : labeled_misses) += value;
      if (name == "cache.misses") miss_components.insert(labels.find("component")->asString());
    }
  }
  EXPECT_EQ(labeled_hits, total_hits) << "per-component hit attribution drifted";
  EXPECT_EQ(labeled_misses, total_misses) << "per-component miss attribution drifted";
  EXPECT_GE(miss_components.size(), 2u) << "table5 parses several components";
  EXPECT_GT(total_hits + total_misses, 0u);
}

TEST(CliObs, DiskCacheCountersAppearInMetricsAndStdoutStaysIdentical) {
  const std::string cache_dir = tempPath("cli_obs_disk_cache_dir");
  const std::string metrics = tempPath("cli_obs_disk_cache_metrics.json");
  std::system(("rm -rf " + cache_dir).c_str());
  const std::string baseline = runCli("extract --scenario s2");
  const std::string cold = runCli("extract --scenario s2 --cache-dir " + cache_dir);
  const std::string warm =
      runCli("extract --scenario s2 --cache-dir " + cache_dir + " --metrics " + metrics);
  EXPECT_EQ(baseline, cold) << "cold cached stdout must match the uncached run";
  EXPECT_EQ(baseline, warm) << "warm cached stdout must match the uncached run";

  const json::Value doc = parseOrFail(slurp(metrics), "metrics file");
  std::uint64_t disk_hits = 0;
  for (const json::Value& c : doc.asObject().find("counters")->asArray()) {
    const json::Object& counter = c.asObject();
    if (counter.find("name")->asString() == "cache.disk.hits") {
      disk_hits += static_cast<std::uint64_t>(counter.find("value")->asInt());
    }
  }
  EXPECT_GT(disk_hits, 0u) << "warm run must hit the disk cache";
  std::system(("rm -rf " + cache_dir).c_str());
}

TEST(CliObs, LogFlagControlsStderr) {
  const std::string quiet_err = tempPath("cli_obs_log_off.txt");
  const std::string info_err = tempPath("cli_obs_log_info.txt");
  runCli("extract --scenario s3 --log off", quiet_err);
  runCli("extract --scenario s3 --log info", info_err);
  EXPECT_EQ(slurp(quiet_err), "");
  const std::string info = slurp(info_err);
  EXPECT_NE(info.find("fsdep[info]"), std::string::npos) << info;
}

}  // namespace
}  // namespace fsdep
