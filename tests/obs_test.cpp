// Unit tests for the observability layer (src/obs): metrics registry
// bucket math, logger level filtering and formatting, trace JSON
// well-formedness, and span nesting across ThreadPool workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "json/json.h"
#include "obs/jsonw.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace fsdep::obs {
namespace {

// ---------------------------------------------------------------- jsonw

TEST(JsonWriter, EscapesStrings) {
  std::string out;
  appendJsonString(out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, WritesNestedStructures) {
  JsonWriter w;
  w.beginObject();
  w.field("name", "x");
  w.field("n", std::uint64_t{3});
  w.key("list");
  w.beginArray();
  w.value(std::int64_t{-1});
  w.value(true);
  w.valueNull();
  w.endArray();
  w.key("raw");
  w.rawValue("{\"k\":1}");
  w.endObject();
  const Result<json::Value> parsed = json::parse(w.str());
  ASSERT_TRUE(parsed.ok()) << w.str();
  const json::Object& root = parsed.value().asObject();
  EXPECT_EQ(root.find("name")->asString(), "x");
  EXPECT_EQ(root.find("n")->asInt(), 3);
  EXPECT_EQ(root.find("list")->asArray().size(), 3u);
  EXPECT_EQ(root.find("raw")->asObject().find("k")->asInt(), 1);
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterAndGaugeBasics) {
  Registry reg;
  Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counterValue("test.counter"), 42u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);  // same handle on re-lookup

  Gauge& g = reg.gauge("test.gauge");
  g.set(7);
  g.set(9);
  EXPECT_EQ(reg.gaugeValue("test.gauge"), 9u);
}

TEST(Metrics, LabeledSeriesAreDistinctAndSummable) {
  Registry reg;
  reg.counter("deps", {{"scenario", "s1"}}).add(10);
  reg.counter("deps", {{"scenario", "s2"}}).add(5);
  // Label order must not matter for identity.
  Counter& a = reg.counter("multi", {{"x", "1"}, {"y", "2"}});
  Counter& b = reg.counter("multi", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counterValue("deps", {{"scenario", "s1"}}), 10u);
  EXPECT_EQ(reg.counterValue("deps", {{"scenario", "s3"}}), 0u);
  EXPECT_EQ(reg.counterSum("deps"), 15u);
}

TEST(Metrics, HistogramBucketMath) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {}, {10, 100, 1000});
  ASSERT_EQ(h.bucketCount(), 4u);  // 3 bounds + overflow
  h.observe(0);     // <= 10
  h.observe(10);    // <= 10 (inclusive upper edge)
  h.observe(11);    // <= 100
  h.observe(100);   // <= 100
  h.observe(101);   // <= 1000
  h.observe(5000);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 5000);
  EXPECT_EQ(h.bucketValue(0), 2u);
  EXPECT_EQ(h.bucketValue(1), 2u);
  EXPECT_EQ(h.bucketValue(2), 1u);
  EXPECT_EQ(h.bucketValue(3), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucketValue(0), 0u);
}

TEST(Metrics, HistogramQuantileInterpolates) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {}, {10, 100, 1000});
  // 10 observations spread evenly across the <=10 bucket...
  for (int i = 0; i < 10; ++i) h.observe(5);
  // ...and 10 in the (10, 100] bucket.
  for (int i = 0; i < 10; ++i) h.observe(50);
  // p50 lands on the last rank of the first bucket: its upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  // p95 is rank 19 of 20 — 90% into the (10, 100] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 91.0);
  // p25 interpolates inside the first bucket: rank 5 of 10 → half way.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // rank 1 of 10 in [0, 10]
}

TEST(Metrics, HistogramQuantileEdgeCases) {
  Registry reg;
  // Empty histogram: no data, quantiles are 0 by definition.
  Histogram& empty = reg.histogram("empty", {}, {10});
  EXPECT_DOUBLE_EQ(empty.quantile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);

  // All observations in the overflow bucket: no upper edge exists, so
  // the estimate is max(largest finite bound, mean).
  Histogram& overflow = reg.histogram("overflow", {}, {10});
  overflow.observe(1000);
  overflow.observe(3000);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.50), 2000.0);  // mean > bound
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 2000.0);

  // Overflow rank but a mean below the last finite bound: clamp up to
  // the bound (the true value is known to exceed it).
  Histogram& mixed = reg.histogram("mixed", {}, {100});
  for (int i = 0; i < 99; ++i) mixed.observe(1);
  mixed.observe(101);
  EXPECT_DOUBLE_EQ(mixed.quantile(1.0), 100.0);

  // No finite bounds at all: every observation is "overflow"; the mean
  // is the only estimate available.
  Histogram& unbounded = reg.histogram("unbounded", {}, {});
  unbounded.observe(4);
  unbounded.observe(8);
  EXPECT_DOUBLE_EQ(unbounded.quantile(0.50), 6.0);

  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(unbounded.quantile(-1.0), unbounded.quantile(0.0));
  EXPECT_DOUBLE_EQ(unbounded.quantile(2.0), unbounded.quantile(1.0));
}

TEST(Metrics, RenderJsonCarriesQuantileEstimates) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {}, {10, 100});
  for (int i = 0; i < 10; ++i) h.observe(5);
  const Result<json::Value> parsed = json::parse(reg.renderJson());
  ASSERT_TRUE(parsed.ok()) << reg.renderJson();
  const json::Object& hist =
      parsed.value().asObject().find("histograms")->asArray().at(0).asObject();
  ASSERT_TRUE(hist.contains("p50"));
  ASSERT_TRUE(hist.contains("p95"));
  ASSERT_TRUE(hist.contains("p99"));
  EXPECT_GT(hist.find("p50")->asDouble(), 0.0);
  EXPECT_LE(hist.find("p50")->asDouble(), 10.0);
  EXPECT_LE(hist.find("p50")->asDouble(), hist.find("p99")->asDouble());
}

TEST(Metrics, ResetByPrefix) {
  Registry reg;
  reg.counter("pipeline.parse_ns").add(100);
  reg.counter("cache.hits").add(3);
  reg.reset("pipeline.");
  EXPECT_EQ(reg.counterValue("pipeline.parse_ns"), 0u);
  EXPECT_EQ(reg.counterValue("cache.hits"), 3u);
  reg.reset();
  EXPECT_EQ(reg.counterValue("cache.hits"), 0u);
}

TEST(Metrics, RenderJsonIsParseable) {
  Registry reg;
  reg.counter("c1", {{"k", "v\"q"}}).add(2);
  reg.gauge("g1").set(4);
  reg.histogram("h1", {}, {1, 2}).observe(3);
  const Result<json::Value> parsed = json::parse(reg.renderJson());
  ASSERT_TRUE(parsed.ok()) << reg.renderJson();
  const json::Object& root = parsed.value().asObject();
  ASSERT_TRUE(root.contains("counters"));
  ASSERT_TRUE(root.contains("gauges"));
  ASSERT_TRUE(root.contains("histograms"));
  const json::Object& c = root.find("counters")->asArray().at(0).asObject();
  EXPECT_EQ(c.find("name")->asString(), "c1");
  EXPECT_EQ(c.find("labels")->asObject().find("k")->asString(), "v\"q");
  EXPECT_EQ(c.find("value")->asInt(), 2);
  const json::Object& h = root.find("histograms")->asArray().at(0).asObject();
  EXPECT_EQ(h.find("count")->asInt(), 1);
  EXPECT_EQ(h.find("buckets")->asArray().size(), 3u);
}

TEST(Metrics, ConcurrentIncrementsDoNotTear) {
  Registry reg;
  Counter& c = reg.counter("race");
  Histogram& h = reg.histogram("race_h", {}, {8});
  constexpr int kPerThread = 10000;
  ThreadPool::parallelFor(4, 4, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) {
      c.add();
      h.observe(static_cast<std::uint64_t>(i % 16));
    }
  });
  EXPECT_EQ(c.value(), 4u * kPerThread);
  EXPECT_EQ(h.count(), 4u * kPerThread);
  EXPECT_EQ(h.bucketValue(0) + h.bucketValue(1), 4u * kPerThread);
}

// ------------------------------------------------------------------ log

TEST(Log, ParsesLevels) {
  EXPECT_EQ(parseLogLevel("debug", LogLevel::Warn), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("info", LogLevel::Warn), LogLevel::Info);
  EXPECT_EQ(parseLogLevel("warn", LogLevel::Debug), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("error", LogLevel::Warn), LogLevel::Error);
  EXPECT_EQ(parseLogLevel("off", LogLevel::Warn), LogLevel::Off);
  EXPECT_EQ(parseLogLevel("bogus", LogLevel::Warn), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel(nullptr, LogLevel::Error), LogLevel::Error);
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Warn);
  EXPECT_FALSE(logEnabled(LogLevel::Debug));
  EXPECT_FALSE(logEnabled(LogLevel::Info));
  EXPECT_TRUE(logEnabled(LogLevel::Warn));
  EXPECT_TRUE(logEnabled(LogLevel::Error));
  setLogLevel(LogLevel::Off);
  EXPECT_FALSE(logEnabled(LogLevel::Error));
  setLogLevel(saved);
}

TEST(Log, FormatsTextAndJsonLines) {
  EXPECT_EQ(formatLogLine(LogLevel::Info, "cli", "hello", /*json=*/false, 12),
            "fsdep[info] cli: hello\n");
  std::string line =
      formatLogLine(LogLevel::Error, "crashck", "a \"quoted\" msg", /*json=*/true, 34);
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  const Result<json::Value> parsed = json::parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  const json::Object& root = parsed.value().asObject();
  EXPECT_EQ(root.find("ts_ms")->asInt(), 34);
  EXPECT_EQ(root.find("level")->asString(), "error");
  EXPECT_EQ(root.find("component")->asString(), "crashck");
  EXPECT_EQ(root.find("msg")->asString(), "a \"quoted\" msg");
}

// ---------------------------------------------------------------- trace

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Trace::enabled());
  {
    Span span("cat", "ignored");
    span.arg("k", "v");
    EXPECT_FALSE(span.active());
  }
  Trace::instant("cat", "also-ignored");
  Trace::start();
  EXPECT_EQ(Trace::snapshot().size(), 0u);
  Trace::stop();
}

TEST(Trace, StopRendersChromeTraceJson) {
  Trace::start();
  {
    Span span("pipeline", "outer");
    span.arg("component", "mke2fs");
    span.arg("n", std::uint64_t{7});
    Span inner("pipeline", "inner");
  }
  Trace::instant("cache", "cache-hit");
  const std::string text = Trace::stop();
  const Result<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  const json::Array& events = parsed.value().asObject().find("traceEvents")->asArray();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by timestamp: outer opened before inner.
  const json::Object& outer = events.at(0).asObject();
  EXPECT_EQ(outer.find("name")->asString(), "outer");
  EXPECT_EQ(outer.find("ph")->asString(), "X");
  EXPECT_EQ(outer.find("cat")->asString(), "pipeline");
  EXPECT_EQ(outer.find("args")->asObject().find("component")->asString(), "mke2fs");
  EXPECT_EQ(outer.find("args")->asObject().find("n")->asInt(), 7);
  ASSERT_TRUE(outer.contains("ts"));
  ASSERT_TRUE(outer.contains("dur"));
  ASSERT_TRUE(outer.contains("tid"));
  const json::Object& inner = events.at(1).asObject();
  EXPECT_EQ(inner.find("name")->asString(), "inner");
  // The inner span nests inside the outer one on the same thread.
  EXPECT_EQ(inner.find("tid")->asInt(), outer.find("tid")->asInt());
  EXPECT_GE(inner.find("ts")->asInt(), outer.find("ts")->asInt());
  EXPECT_LE(inner.find("ts")->asInt() + inner.find("dur")->asInt(),
            outer.find("ts")->asInt() + outer.find("dur")->asInt());
  const json::Object& instant = events.at(2).asObject();
  EXPECT_EQ(instant.find("ph")->asString(), "i");
  // After stop() tracing is off again and the buffers are drained.
  EXPECT_FALSE(Trace::enabled());
}

TEST(Trace, SpansNestCorrectlyAcrossPoolWorkers) {
  Trace::start();
  ThreadPool::parallelFor(16, 4, [](std::size_t i) {
    Span outer("test", "outer");
    outer.arg("i", static_cast<std::uint64_t>(i));
    for (int k = 0; k < 3; ++k) {
      Span inner("test", "inner");
    }
  });
  std::vector<TraceEvent> events = Trace::snapshot();
  Trace::stop();

  std::size_t outers = 0;
  std::size_t inners = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") ++outers;
    if (e.name == "inner") ++inners;
  }
  EXPECT_EQ(outers, 16u);
  EXPECT_EQ(inners, 48u);

  // Per thread, every inner span must lie inside some outer span of the
  // same thread (parallelFor bodies do not interleave within a worker).
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  for (const auto& [tid, tid_events] : by_tid) {
    for (const TraceEvent* inner : tid_events) {
      if (inner->name != "inner") continue;
      const bool contained =
          std::any_of(tid_events.begin(), tid_events.end(), [&](const TraceEvent* outer) {
            return outer->name == "outer" && outer->ts_us <= inner->ts_us &&
                   inner->ts_us + inner->dur_us <= outer->ts_us + outer->dur_us;
          });
      EXPECT_TRUE(contained) << "orphan inner span on tid " << tid;
    }
  }

  // The merged snapshot is ordered by timestamp.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_us < b.ts_us;
                             }));
}

TEST(Trace, BoundedBuffersCountDrops) {
  const std::size_t saved_limit = Trace::bufferLimit();
  Trace::setBufferLimit(4);
  Registry::global().reset("trace.");
  Trace::start();
  EXPECT_EQ(Trace::droppedEvents(), 0u);
  for (int i = 0; i < 10; ++i) {
    Span span("test", "burst");
  }
  const std::vector<TraceEvent> events = Trace::stopEvents();
  Trace::setBufferLimit(saved_limit);

  // 4 events fit this thread's buffer; the 6 overflowing ones are
  // dropped and counted, both locally and in the registry series.
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(Trace::droppedEvents(), 6u);
  EXPECT_EQ(Registry::global().counterValue("trace.dropped_events"), 6u);

  // start() resets the drop count for the next collection.
  Trace::start();
  EXPECT_EQ(Trace::droppedEvents(), 0u);
  {
    Span span("test", "fits");
  }
  EXPECT_EQ(Trace::stopEvents().size(), 1u);
  EXPECT_EQ(Trace::droppedEvents(), 0u);
}

// --------------------------------------------------------------- report

TEST(Report, RendersStructuredRunReport) {
  RunReport report;
  report.setCommand("table5", {"--jobs", "4"});
  report.setJobs(4);
  report.setWallMillis(12.5);
  report.setExitCode(0);
  report.setTraceDropped(7);
  report.note("unique_deps", std::uint64_t{64});
  report.note("outcome", "ok");
  report.note("unique_deps", std::uint64_t{65});  // overwrite, not duplicate
  const Result<json::Value> parsed = json::parse(report.renderJson());
  ASSERT_TRUE(parsed.ok()) << report.renderJson();
  const json::Object& root = parsed.value().asObject();
  EXPECT_EQ(root.find("schema_version")->asInt(), kReportSchemaVersion);
  EXPECT_EQ(root.find("tool")->asString(), "fsdep");
  EXPECT_EQ(root.find("version")->asString(), kFsdepVersion);
  EXPECT_EQ(root.find("command")->asString(), "table5");
  EXPECT_EQ(root.find("args")->asArray().size(), 2u);
  EXPECT_EQ(root.find("jobs")->asInt(), 4);
  EXPECT_DOUBLE_EQ(root.find("wall_ms")->asDouble(), 12.5);
  EXPECT_EQ(root.find("trace_dropped_events")->asInt(), 7);
  const json::Object& facts = root.find("facts")->asObject();
  EXPECT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts.find("unique_deps")->asInt(), 65);
  EXPECT_EQ(facts.find("outcome")->asString(), "ok");
  // The metrics registry snapshot is embedded.
  EXPECT_TRUE(root.find("metrics")->asObject().contains("counters"));
}

}  // namespace
}  // namespace fsdep::obs
