#include <gtest/gtest.h>

#include "ast/parser.h"
#include "cfg/cfg.h"
#include "lex/lexer.h"
#include "sema/sema.h"

namespace fsdep::cfg {
namespace {

using namespace ast;

struct Built {
  std::unique_ptr<TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::unique_ptr<Cfg> cfg;
};

Built buildCfg(const std::string& body) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer("t.c", "void f(int a, int b) {\n" + body + "\n}");
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  Built built;
  built.tu = parser.parseTranslationUnit("t.c");
  EXPECT_FALSE(diags.hasErrors()) << diags.render(sm);
  built.sema = std::make_unique<sema::Sema>(*built.tu, diags);
  built.sema->run();
  built.cfg = Cfg::build(*built.tu->findFunction("f"));
  return built;
}

int countConditionBlocks(const Cfg& cfg, bool loops_only = false) {
  int n = 0;
  for (BlockId id = 0; id < cfg.size(); ++id) {
    const BasicBlock& b = cfg.block(id);
    if (b.condition != nullptr && (!loops_only || b.is_loop_condition)) ++n;
  }
  return n;
}

TEST(Cfg, StraightLineIsOneBlockPlusNothing) {
  const auto built = buildCfg("a = 1; b = 2; a = a + b;");
  const Cfg& cfg = *built.cfg;
  EXPECT_EQ(cfg.block(cfg.entry()).stmts.size(), 3u);
  EXPECT_TRUE(cfg.block(cfg.entry()).is_exit);
}

TEST(Cfg, IfCreatesTrueFalseEdges) {
  const auto built = buildCfg("if (a) { b = 1; }");
  const Cfg& cfg = *built.cfg;
  const BasicBlock& entry = cfg.block(cfg.entry());
  ASSERT_NE(entry.condition, nullptr);
  EXPECT_FALSE(entry.is_loop_condition);
  ASSERT_EQ(entry.successors.size(), 2u);
  bool has_true = false;
  bool has_false = false;
  for (const Edge& e : entry.successors) {
    has_true |= e.kind == EdgeKind::True;
    has_false |= e.kind == EdgeKind::False;
  }
  EXPECT_TRUE(has_true);
  EXPECT_TRUE(has_false);
}

TEST(Cfg, IfElseJoins) {
  const auto built = buildCfg("if (a) { b = 1; } else { b = 2; } a = b;");
  const Cfg& cfg = *built.cfg;
  // join block holds the trailing assignment and is reachable from both arms
  bool found_join = false;
  for (BlockId id = 0; id < cfg.size(); ++id) {
    const BasicBlock& blk = cfg.block(id);
    if (blk.stmts.size() == 1 && blk.predecessors.size() == 2) found_join = true;
  }
  EXPECT_TRUE(found_join);
}

TEST(Cfg, WhileLoopMarksLoopCondition) {
  const auto built = buildCfg("while (a) { a = a - 1; }");
  EXPECT_EQ(countConditionBlocks(*built.cfg), 1);
  EXPECT_EQ(countConditionBlocks(*built.cfg, /*loops_only=*/true), 1);
}

TEST(Cfg, IfConditionIsNotLoopCondition) {
  const auto built = buildCfg("if (a) { b = 1; }");
  EXPECT_EQ(countConditionBlocks(*built.cfg, /*loops_only=*/true), 0);
}

TEST(Cfg, ForLoopHasIncrementBlock) {
  const auto built = buildCfg("for (int i = 0; i < 10; i = i + 1) { a = a + i; }");
  const Cfg& cfg = *built.cfg;
  int inc_blocks = 0;
  for (BlockId id = 0; id < cfg.size(); ++id) {
    if (cfg.block(id).inc_expr != nullptr) ++inc_blocks;
  }
  EXPECT_EQ(inc_blocks, 1);
  EXPECT_EQ(countConditionBlocks(cfg, /*loops_only=*/true), 1);
}

TEST(Cfg, DoWhileBodyPrecedesCondition) {
  const auto built = buildCfg("do { a = a + 1; } while (a < 5);");
  const Cfg& cfg = *built.cfg;
  EXPECT_EQ(countConditionBlocks(cfg, /*loops_only=*/true), 1);
  // The body block must be reachable from the entry without passing the
  // condition (do-while executes the body first).
  const BasicBlock& entry = cfg.block(cfg.entry());
  ASSERT_FALSE(entry.successors.empty());
  const BasicBlock& body = cfg.block(entry.successors[0].target);
  EXPECT_FALSE(body.stmts.empty());
}

TEST(Cfg, BreakExitsLoop) {
  const auto built = buildCfg("while (1) { if (a) { break; } b = b + 1; } a = 9;");
  const Cfg& cfg = *built.cfg;
  // The tail assignment must be reachable (the break edge).
  const std::vector<BlockId> order = cfg.reversePostOrder();
  bool tail_reachable = false;
  for (const BlockId id : order) {
    for (const Stmt* s : cfg.block(id).stmts) {
      if (s->kind() == StmtKind::Expr) tail_reachable = true;
    }
  }
  EXPECT_TRUE(tail_reachable);
}

TEST(Cfg, ReturnEndsBlock) {
  const auto built = buildCfg("if (a) { return; } b = 1;");
  const Cfg& cfg = *built.cfg;
  int exit_blocks = 0;
  for (BlockId id = 0; id < cfg.size(); ++id) exit_blocks += cfg.block(id).is_exit ? 1 : 0;
  EXPECT_GE(exit_blocks, 2);
}

TEST(Cfg, SwitchDispatchIsMarked) {
  const auto built = buildCfg(
      "switch (a) { case 1: b = 1; break; case 2: b = 2; break; default: b = 0; }");
  const Cfg& cfg = *built.cfg;
  int dispatches = 0;
  for (BlockId id = 0; id < cfg.size(); ++id) {
    if (cfg.block(id).is_switch_dispatch) ++dispatches;
  }
  EXPECT_EQ(dispatches, 1);
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  const auto built = buildCfg("if (a) { b = 1; } else { b = 2; } while (b) { b = b - 1; }");
  const Cfg& cfg = *built.cfg;
  const std::vector<BlockId> order = cfg.reversePostOrder();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), cfg.entry());
  // RPO contains every reachable block exactly once.
  std::set<BlockId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), order.size());
}

TEST(Cfg, DumpMentionsBranches) {
  const auto built = buildCfg("if (a > 3) { b = 1; }");
  const std::string dump = built.cfg->dump();
  EXPECT_NE(dump.find("branch a > 3"), std::string::npos);
  EXPECT_NE(dump.find("[true]"), std::string::npos);
  EXPECT_NE(dump.find("[false]"), std::string::npos);
}

TEST(Cfg, PrototypeGetsTrivialGraph) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer("p.c", "void g(int x);");
  lex::Lexer lexer(sm, file, diags);
  ast::Parser parser(lexer.lexAll(), diags);
  auto tu = parser.parseTranslationUnit("p.c");
  const FunctionDecl* fn = tu->findFunction("g");
  const auto cfg = Cfg::build(*fn);
  EXPECT_EQ(cfg->size(), 1u);
  EXPECT_TRUE(cfg->block(cfg->entry()).is_exit);
}

}  // namespace
}  // namespace fsdep::cfg
