#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"

namespace fsdep::fsim {
namespace {

BlockDevice makeFs(MkfsOptions* opts_out = nullptr, std::uint32_t block_size = 1024) {
  BlockDevice dev(8192, block_size);
  MkfsOptions o;
  o.block_size = block_size;
  o.size_blocks = 4096;
  o.blocks_per_group = 1024;
  o.inode_ratio = std::max<std::uint32_t>(8192, block_size);
  const auto sb = MkfsTool::format(dev, o);
  EXPECT_TRUE(sb.ok()) << (sb.ok() ? "" : sb.error().message);
  if (opts_out != nullptr) *opts_out = o;
  return dev;
}

TEST(Mount, DefaultsWork) {
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok()) << mounted.error().message;
  EXPECT_EQ(mounted.value().superblock().magic, kExt4Magic);
}

TEST(Mount, MountCountIncrements) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().unmount();
  }
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().mount_count, 1u);
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().unmount();
  }
  EXPECT_EQ(image.loadSuperblock().mount_count, 2u);
}

TEST(Mount, ReadOnlyDoesNotTouchTheImage) {
  BlockDevice dev = makeFs();
  MountOptions o;
  o.read_only = true;
  const std::uint64_t writes_before = dev.writeCount();
  auto mounted = MountTool::mount(dev, o);
  ASSERT_TRUE(mounted.ok());
  mounted.value().unmount();
  EXPECT_EQ(dev.writeCount(), writes_before);
}

TEST(Mount, RejectsBadMagic) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.magic = 0x1234;
  image.storeSuperblock(sb);
  const auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_FALSE(mounted.ok());
  EXPECT_NE(mounted.error().message.find("magic"), std::string::npos);
}

TEST(Mount, RejectsFieldDomainViolations) {
  struct Case {
    const char* name;
    void (*corrupt)(Superblock&);
  };
  const Case cases[] = {
      {"log_block_size", [](Superblock& sb) { sb.log_block_size = 9; }},
      {"inode_size", [](Superblock& sb) { sb.inode_size = 64; }},
      {"rev_level", [](Superblock& sb) { sb.rev_level = 3; }},
      {"first_inode", [](Superblock& sb) { sb.first_inode = 5; }},
      {"desc_size", [](Superblock& sb) { sb.desc_size = 128; }},
      {"first_data_block", [](Superblock& sb) { sb.first_data_block = 7; }},
      {"inodes_per_group", [](Superblock& sb) { sb.inodes_per_group = 4; }},
  };
  for (const Case& c : cases) {
    BlockDevice dev = makeFs();
    FsImage image(dev);
    Superblock sb = image.loadSuperblock();
    c.corrupt(sb);
    sb.updateChecksum();
    image.storeSuperblock(sb);
    EXPECT_FALSE(MountTool::mount(dev, MountOptions{}).ok()) << c.name;
  }
}

TEST(Mount, OptionInteractionChecks) {
  BlockDevice dev = makeFs(nullptr, 4096);
  struct Case {
    const char* name;
    void (*mutate)(MountOptions&);
  };
  const Case cases[] = {
      {"dax+data=journal",
       [](MountOptions& o) { o.dax = true; o.data_mode = DataMode::Journal; o.delalloc = false;
                             o.auto_da_alloc = false; }},
      {"noload-rw", [](MountOptions& o) { o.noload = true; o.read_only = false; }},
      {"async-commit-no-checksum",
       [](MountOptions& o) { o.journal_async_commit = true; o.journal_checksum = false; }},
      {"dioread+journal",
       [](MountOptions& o) { o.dioread_nolock = true; o.data_mode = DataMode::Journal;
                             o.delalloc = false; o.auto_da_alloc = false; }},
      {"delalloc+journal", [](MountOptions& o) { o.data_mode = DataMode::Journal; }},
      {"commit-range", [](MountOptions& o) { o.commit_interval = 301; }},
      {"stripe-range", [](MountOptions& o) { o.stripe = 3000000; }},
      {"readahead-pow2", [](MountOptions& o) { o.inode_readahead_blks = 33; }},
      {"batch-order", [](MountOptions& o) { o.min_batch_time = 5; o.max_batch_time = 1; }},
  };
  for (const Case& c : cases) {
    MountOptions o;
    c.mutate(o);
    EXPECT_FALSE(MountTool::mount(dev, o).ok()) << c.name;
  }
}

TEST(Mount, DaxNeedsFourKBlocks) {
  BlockDevice small = makeFs(nullptr, 1024);
  MountOptions o;
  o.dax = true;
  EXPECT_FALSE(MountTool::mount(small, o).ok());

  BlockDevice big = makeFs(nullptr, 4096);
  EXPECT_TRUE(MountTool::mount(big, o).ok());
}

TEST(MountedFs, CreateStatRemove) {
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  MountedFs& fs = mounted.value();

  const auto ino = fs.createFile(5000);
  ASSERT_TRUE(ino.ok()) << ino.error().message;
  const auto stat = fs.statFile(ino.value());
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->size_bytes, 5000u);
  EXPECT_GE(stat->extents.size(), 1u);

  ASSERT_TRUE(fs.removeFile(ino.value()).ok());
  EXPECT_FALSE(fs.statFile(ino.value()).has_value());
}

TEST(MountedFs, FragmentationCap) {
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  const auto ino = mounted.value().createFile(8 * 1024, /*max_extent_blocks=*/2);
  ASSERT_TRUE(ino.ok());
  const auto stat = mounted.value().statFile(ino.value());
  ASSERT_TRUE(stat.has_value());
  EXPECT_GE(stat->extents.size(), 2u);
}

TEST(MountedFs, FilesSurviveRemountAndFsckStaysClean) {
  BlockDevice dev = makeFs();
  std::uint32_t ino = 0;
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    const auto created = mounted.value().createFile(3000);
    ASSERT_TRUE(created.ok());
    ino = created.value();
    mounted.value().unmount();
  }
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    const auto stat = mounted.value().statFile(ino);
    ASSERT_TRUE(stat.has_value());
    EXPECT_EQ(stat->size_bytes, 3000u);
  }
}

TEST(MountedFs, ReadOnlyRefusesWrites) {
  BlockDevice dev = makeFs();
  MountOptions o;
  o.read_only = true;
  auto mounted = MountTool::mount(dev, o);
  ASSERT_TRUE(mounted.ok());
  EXPECT_FALSE(mounted.value().createFile(1000).ok());
}

TEST(MountedFs, OutOfSpaceIsGraceful) {
  BlockDevice dev(1024, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 1024;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(dev, o).ok());
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  // Ask for far more than the filesystem holds.
  const auto ino = mounted.value().createFile(10 * 1024 * 1024);
  EXPECT_FALSE(ino.ok());
  mounted.value().unmount();
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean())
      << "failed allocation must roll back cleanly: " << fsck.value().summary();
}

}  // namespace
}  // namespace fsdep::fsim
