// TuneTool (tune2fs) tests: feature flips validated against the same
// dependency set as mkfs, with the post-hoc-specific rules.
#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/tune.h"

namespace fsdep::fsim {
namespace {

BlockDevice makeFs(bool quota = false, bool journal = true) {
  BlockDevice dev(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 4096;
  o.blocks_per_group = 1024;
  o.inode_ratio = 8192;
  o.quota = quota;
  o.has_journal = journal || quota;
  EXPECT_TRUE(MkfsTool::format(dev, o).ok());
  return dev;
}

TEST(Tune, SetLabelAndTunables) {
  BlockDevice dev = makeFs();
  TuneOptions o;
  o.label = "renamed";
  o.max_mount_count = 25;
  o.reserved_blocks_count = 100;
  const auto report = TuneTool::tune(dev, o);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().changes.size(), 3u);

  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  EXPECT_STREQ(sb.volume_name, "renamed");
  EXPECT_EQ(sb.max_mount_count, 25);
  EXPECT_EQ(sb.reserved_blocks_count, 100u);
}

TEST(Tune, RemovingJournalFreesItsBlocks) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  const std::uint32_t free_before = image.loadSuperblock().free_blocks_count;
  const std::uint32_t journal_blocks = image.loadSuperblock().journal_blocks;
  ASSERT_GT(journal_blocks, 0u);

  TuneOptions o;
  o.has_journal = false;
  ASSERT_TRUE(TuneTool::tune(dev, o).ok());

  const Superblock sb = image.loadSuperblock();
  EXPECT_FALSE(sb.hasCompat(kCompatHasJournal));
  EXPECT_EQ(sb.journal_blocks, 0u);
  EXPECT_EQ(sb.free_blocks_count, free_before + journal_blocks);

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Tune, CannotDropJournalOfQuotaFilesystem) {
  BlockDevice dev = makeFs(/*quota=*/true);
  TuneOptions o;
  o.has_journal = false;
  const auto report = TuneTool::tune(dev, o);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("quota"), std::string::npos);
}

TEST(Tune, CanDropJournalAfterDroppingQuota) {
  BlockDevice dev = makeFs(/*quota=*/true);
  TuneOptions drop_quota;
  drop_quota.quota = false;
  ASSERT_TRUE(TuneTool::tune(dev, drop_quota).ok());
  TuneOptions drop_journal;
  drop_journal.has_journal = false;
  EXPECT_TRUE(TuneTool::tune(dev, drop_journal).ok());
}

TEST(Tune, DropQuotaAndJournalTogether) {
  BlockDevice dev = makeFs(/*quota=*/true);
  TuneOptions o;
  o.quota = false;
  o.has_journal = false;
  EXPECT_TRUE(TuneTool::tune(dev, o).ok())
      << "the post-change state satisfies the dependency";
}

TEST(Tune, RefusesDirtyFilesystem) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().crash();
  }
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.state = 0;
  sb.updateChecksum();
  image.storeSuperblock(sb);

  TuneOptions o;
  o.label = "nope";
  EXPECT_FALSE(TuneTool::tune(dev, o).ok());
}

TEST(Tune, RefusesRemovingUnrecoveredJournal) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().crash();  // journal left dirty, state still valid
  }
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.state = kStateValid;  // pretend only the journal flag survived
  sb.updateChecksum();
  image.storeSuperblock(sb);

  TuneOptions o;
  o.has_journal = false;
  const auto report = TuneTool::tune(dev, o);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("recovery"), std::string::npos);
}

TEST(Tune, SwitchToSparseSuper2AndBack) {
  BlockDevice dev = makeFs();
  // sparse_super2 excludes resize_inode, which the default fs has.
  TuneOptions to_sparse2;
  to_sparse2.sparse_super2 = true;
  EXPECT_FALSE(TuneTool::tune(dev, to_sparse2).ok());

  // On a resize_inode-free fs the switch works and stays consistent.
  BlockDevice dev2(8192, 1024);
  MkfsOptions mo;
  mo.block_size = 1024;
  mo.size_blocks = 4096;
  mo.blocks_per_group = 1024;
  mo.inode_ratio = 8192;
  mo.resize_inode = false;
  ASSERT_TRUE(MkfsTool::format(dev2, mo).ok());
  ASSERT_TRUE(TuneTool::tune(dev2, to_sparse2).ok());
  FsImage image(dev2);
  EXPECT_TRUE(image.loadSuperblock().hasCompat(kCompatSparseSuper2));
  EXPECT_GT(image.loadSuperblock().backup_bgs[1], 0u);

  TuneOptions back;
  back.sparse_super2 = false;
  ASSERT_TRUE(TuneTool::tune(dev2, back).ok());
  EXPECT_FALSE(image.loadSuperblock().hasCompat(kCompatSparseSuper2));
  EXPECT_TRUE(image.loadSuperblock().hasRoCompat(kRoCompatSparseSuper));
}

TEST(Tune, UninitBgExcludesMetadataCsum) {
  BlockDevice dev = makeFs();
  TuneOptions o;
  o.metadata_csum = true;
  o.uninit_bg = true;
  const auto report = TuneTool::tune(dev, o);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("uninit_bg"), std::string::npos);
}

TEST(Tune, ReservedBlocksCapped) {
  BlockDevice dev = makeFs();
  TuneOptions o;
  o.reserved_blocks_count = 4000;  // > half of 4096
  EXPECT_FALSE(TuneTool::tune(dev, o).ok());
}

TEST(Tune, TunedFilesystemStillMounts) {
  BlockDevice dev = makeFs();
  TuneOptions o;
  o.label = "tuned";
  o.has_journal = false;
  ASSERT_TRUE(TuneTool::tune(dev, o).ok());
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok()) << mounted.error().message;
  EXPECT_TRUE(mounted.value().createFile(2048).ok());
  mounted.value().unmount();
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

}  // namespace
}  // namespace fsdep::fsim
