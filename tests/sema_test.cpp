#include <gtest/gtest.h>

#include "ast/parser.h"
#include "lex/lexer.h"
#include "sema/sema.h"

namespace fsdep::sema {
namespace {

using namespace ast;

struct Analyzed {
  std::unique_ptr<TranslationUnit> tu;
  std::unique_ptr<Sema> sema;
  bool ok = false;
};

Analyzed analyze(const std::string& text) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer("t.c", text);
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  Analyzed a;
  a.tu = parser.parseTranslationUnit("t.c");
  a.sema = std::make_unique<Sema>(*a.tu, diags);
  a.ok = a.sema->run();
  return a;
}

/// First DeclRef with the given name anywhere under `expr`.
const DeclRefExpr* findRef(const Expr& expr, const std::string& name) {
  switch (expr.kind()) {
    case ExprKind::DeclRef: {
      const auto& ref = static_cast<const DeclRefExpr&>(expr);
      return ref.name == name ? &ref : nullptr;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (const auto* r = findRef(*b.lhs, name)) return r;
      return findRef(*b.rhs, name);
    }
    case ExprKind::Member:
      return findRef(*static_cast<const MemberExpr&>(expr).base, name);
    case ExprKind::Unary:
      return findRef(*static_cast<const UnaryExpr&>(expr).operand, name);
    default:
      return nullptr;
  }
}

TEST(Sema, ResolvesLocalsAndParams) {
  const auto a = analyze("long f(long p) { long x = p + 1; return x; }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* decl_stmt = static_cast<const DeclStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const DeclRefExpr* p_ref = findRef(*decl_stmt->vars.at(0)->init, "p");
  ASSERT_NE(p_ref, nullptr);
  EXPECT_EQ(p_ref->decl, fn->params.at(0).get());
}

TEST(Sema, ResolvesGlobals) {
  const auto a = analyze("long counter;\nvoid f(void) { counter = counter + 1; }");
  ASSERT_TRUE(a.ok);
  const VarDecl* global = a.tu->findGlobal("counter");
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* stmt = static_cast<const ExprStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const DeclRefExpr* ref = findRef(*stmt->expr, "counter");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->decl, global);
}

TEST(Sema, InnerScopeShadowsOuter) {
  const auto a = analyze("void f(void) { long x = 1; { long x = 2; x = 3; } }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto& body = static_cast<const CompoundStmt&>(*fn->body);
  const auto* outer_decl = static_cast<const DeclStmt*>(body.body.at(0).get());
  const auto& inner = static_cast<const CompoundStmt&>(*body.body.at(1));
  const auto* inner_decl = static_cast<const DeclStmt*>(inner.body.at(0).get());
  const auto* assign = static_cast<const ExprStmt*>(inner.body.at(1).get());
  const DeclRefExpr* ref = findRef(*assign->expr, "x");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->decl, inner_decl->vars.at(0).get());
  EXPECT_NE(ref->decl, outer_decl->vars.at(0).get());
}

TEST(Sema, ResolvesEnumConstants) {
  const auto a = analyze("enum e { GREEN = 5 };\nvoid f(void) { long x = GREEN; }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* decl = static_cast<const DeclStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const DeclRefExpr* ref = findRef(*decl->vars.at(0)->init, "GREEN");
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->is_enum_constant);
  EXPECT_EQ(ref->enum_value, 5);
}

TEST(Sema, ImplicitEnumValuesIncrement) {
  const auto a = analyze("enum e { A = 10, B, C = 20, D };\nint z;");
  ASSERT_TRUE(a.ok);
  const auto* e = static_cast<const EnumDecl*>(a.tu->decls.at(0).get());
  EXPECT_EQ(e->enumerators[1].value, 11);
  EXPECT_EQ(e->enumerators[3].value, 21);
}

TEST(Sema, BindsStructMembersThroughPointer) {
  const auto a = analyze(
      "struct sb { unsigned int blocks; };\n"
      "unsigned int f(struct sb *s) { return s->blocks; }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* ret = static_cast<const ReturnStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const auto& member = static_cast<const MemberExpr&>(*ret->value);
  ASSERT_NE(member.record, nullptr);
  EXPECT_EQ(member.record->name, "sb");
  ASSERT_NE(member.field, nullptr);
  EXPECT_EQ(member.field->name, "blocks");
}

TEST(Sema, BindsMembersThroughTypedef) {
  const auto a = analyze(
      "struct sb { int x; };\n"
      "typedef struct sb sb_t;\n"
      "int f(sb_t *s) { return s->x; }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* ret = static_cast<const ReturnStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const auto& member = static_cast<const MemberExpr&>(*ret->value);
  ASSERT_NE(member.field, nullptr);
  EXPECT_EQ(member.field->name, "x");
}

TEST(Sema, UnknownFieldIsAnError) {
  const auto a = analyze("struct sb { int x; };\nint f(struct sb *s) { return s->nope; }");
  EXPECT_FALSE(a.ok);
}

TEST(Sema, BindsCallees) {
  const auto a = analyze("long helper(long v) { return v; }\nlong f(void) { return helper(1); }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* ret = static_cast<const ReturnStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const auto& call = static_cast<const CallExpr&>(*ret->value);
  ASSERT_NE(call.callee_decl, nullptr);
  EXPECT_EQ(call.callee_decl->name, "helper");
}

TEST(Sema, ConstantFolding) {
  const auto a = analyze("enum e { K = 6 };\nint z;");
  ASSERT_TRUE(a.ok);

  auto fold = [&](const std::string& text) {
    const auto b = analyze("enum e { K = 6 };\nlong v = " + text + ";");
    const auto* var = static_cast<const VarDecl*>(b.tu->decls.at(1).get());
    return b.sema->foldConstant(*var->init);
  };

  EXPECT_EQ(fold("1 + 2 * 3"), 7);
  EXPECT_EQ(fold("(1 << 10) - 1"), 1023);
  EXPECT_EQ(fold("K * 2"), 12);
  EXPECT_EQ(fold("-K"), -6);
  EXPECT_EQ(fold("~0"), -1);
  EXPECT_EQ(fold("!0"), 1);
  EXPECT_EQ(fold("10 / 3"), 3);
  EXPECT_EQ(fold("10 % 3"), 1);
  EXPECT_EQ(fold("1 ? 11 : 22"), 11);
  EXPECT_EQ(fold("0 ? 11 : 22"), 22);
  EXPECT_EQ(fold("5 > 3"), 1);
  EXPECT_FALSE(fold("1 / 0").has_value());
}

TEST(Sema, FoldingNonConstantsFails) {
  const auto a = analyze("long g;\nlong v = g + 1;");
  const auto* var = static_cast<const VarDecl*>(a.tu->decls.at(1).get());
  EXPECT_FALSE(a.sema->foldConstant(*var->init).has_value());
}

TEST(Sema, TypeOfMemberIsFieldType) {
  const auto a = analyze(
      "typedef unsigned short u16;\n"
      "struct sb { u16 magic; };\n"
      "int f(struct sb *s) { return s->magic; }");
  ASSERT_TRUE(a.ok);
  const FunctionDecl* fn = a.tu->findFunction("f");
  const auto* ret = static_cast<const ReturnStmt*>(
      static_cast<const CompoundStmt*>(fn->body.get())->body.at(0).get());
  const auto type = a.sema->typeOf(*ret->value);
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(type->base, BaseTypeKind::Short);
  EXPECT_TRUE(type->is_unsigned);
}

TEST(Sema, UndeclaredIdentifierIsOnlyAWarning) {
  const auto a = analyze("void f(void) { mystery = 1; }");
  EXPECT_TRUE(a.ok) << "unknown identifiers must not abort analysis of C-like code";
}

}  // namespace
}  // namespace fsdep::sema
