// BtrFS generalization tests (paper SS6, second target).
#include <gtest/gtest.h>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

class BtrfsFixture : public ::testing::Test {
 protected:
  static const std::vector<Dependency>& deps() {
    static const std::vector<Dependency> kDeps = [] {
      const extract::ExtractOptions options = btrfsExtractOptions();
      return runScenario(btrfsScenario(), taint::AnalysisOptions{}, &options);
    }();
    return kDeps;
  }

  static const Dependency* find(DepKind kind, ConstraintOp op, const std::string& param,
                                const std::string& other = "") {
    Dependency probe;
    probe.kind = kind;
    probe.op = op;
    probe.param = param;
    probe.other_param = other;
    for (const Dependency& d : deps()) {
      if (d.dedupKey() == probe.dedupKey()) return &d;
    }
    return nullptr;
  }
};

TEST_F(BtrfsFixture, ComponentsParse) {
  for (const std::string& name : btrfsComponentNames()) {
    EXPECT_NO_THROW(AnalyzedComponent(name, taint::AnalysisOptions{})) << name;
  }
}

TEST_F(BtrfsFixture, MaxInlineBoundedByNodeSize) {
  // The headline CCD: a mount option bounded by a creation parameter.
  const Dependency* dep = find(DepKind::CcdValue, ConstraintOp::Le, "btrfs_mount.max_inline",
                               "mkfs_btrfs.nodesize");
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->bridge_field, "btrfs_sb.sb_nodesize");
}

TEST_F(BtrfsFixture, BalanceRaid5RequiresRaid56Format) {
  const Dependency* dep = find(DepKind::CcdControl, ConstraintOp::Requires,
                               "btrfs_balance.convert_raid5", "mkfs_btrfs.raid56");
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->bridge_field, "btrfs_sb.sb_features");
}

TEST_F(BtrfsFixture, BalanceBehaviourGatedByCreationProfile) {
  EXPECT_NE(find(DepKind::CcdBehavioral, ConstraintOp::Influences, "btrfs_balance.convert",
                 "mkfs_btrfs.data_profile"),
            nullptr);
  bool mixed_bg = false;
  for (const Dependency& d : deps()) {
    if (d.kind == DepKind::CcdBehavioral && d.other_param == "mkfs_btrfs.mixed_bg") {
      mixed_bg = true;
    }
  }
  EXPECT_TRUE(mixed_bg);
}

TEST_F(BtrfsFixture, MountOptionInteractions) {
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Requires, "btrfs_mount.nodatacow",
                 "btrfs_mount.nodatasum"),
            nullptr);
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Excludes, "btrfs_mount.compress",
                 "btrfs_mount.nodatacow"),
            nullptr);
}

TEST_F(BtrfsFixture, NodeSectorRelations) {
  EXPECT_NE(find(DepKind::CpdValue, ConstraintOp::Ge, "mkfs_btrfs.nodesize",
                 "mkfs_btrfs.sectorsize"),
            nullptr);
  // mixed_bg forces equality — extracted as the Eq relation.
  EXPECT_NE(find(DepKind::CpdValue, ConstraintOp::Eq, "mkfs_btrfs.nodesize",
                 "mkfs_btrfs.sectorsize"),
            nullptr);
}

TEST_F(BtrfsFixture, ExtractsAllThreeLevels) {
  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  for (const Dependency& d : deps()) {
    switch (d.level()) {
      case model::DepLevel::SelfDependency: ++sd; break;
      case model::DepLevel::CrossParameter: ++cpd; break;
      case model::DepLevel::CrossComponent: ++ccd; break;
    }
  }
  EXPECT_GE(sd, 8);
  EXPECT_GE(cpd, 4);
  EXPECT_GE(ccd, 3);
}

}  // namespace
}  // namespace fsdep::corpus
