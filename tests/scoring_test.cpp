#include <gtest/gtest.h>

#include "extract/scoring.h"

namespace fsdep::extract {
namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

Dependency makeDep(DepKind kind, const std::string& param, const std::string& other = "") {
  Dependency d;
  d.kind = kind;
  d.op = kind == DepKind::SdValueRange ? ConstraintOp::InRange
         : kind == DepKind::SdDataType ? ConstraintOp::HasType
         : kind == DepKind::CcdBehavioral ? ConstraintOp::Influences
                                          : ConstraintOp::Excludes;
  d.param = param;
  d.other_param = other;
  d.id = param + "/" + other;
  return d;
}

GroundTruthEntry makeGt(const Dependency& dep, std::set<std::string> valid,
                        std::set<std::string> expected) {
  GroundTruthEntry e;
  e.dep = dep;
  e.valid_scenarios = std::move(valid);
  e.expected_scenarios = std::move(expected);
  return e;
}

TEST(Scoring, TruePositivesAndLevels) {
  const Dependency sd = makeDep(DepKind::SdValueRange, "a.p");
  const Dependency cpd = makeDep(DepKind::CpdControl, "a.p", "a.q");
  const Dependency ccd = makeDep(DepKind::CcdBehavioral, "b.r", "a.p");
  const std::vector<GroundTruthEntry> gt = {
      makeGt(sd, {"s1"}, {"s1"}),
      makeGt(cpd, {"s1"}, {"s1"}),
      makeGt(ccd, {"s1"}, {"s1"}),
  };
  const ScenarioScore score = scoreScenario("s1", {sd, cpd, ccd}, gt);
  EXPECT_EQ(score.sd.extracted, 1);
  EXPECT_EQ(score.cpd.extracted, 1);
  EXPECT_EQ(score.ccd.extracted, 1);
  EXPECT_EQ(score.totalFalsePositives(), 0);
  EXPECT_TRUE(score.false_negative_ids.empty());
}

TEST(Scoring, ScenarioConditionalFalsePositive) {
  const Dependency dep = makeDep(DepKind::SdValueRange, "mount.commit");
  const std::vector<GroundTruthEntry> gt = {makeGt(dep, {"s1"}, {"s1", "s3"})};

  const ScenarioScore s1 = scoreScenario("s1", {dep}, gt);
  EXPECT_EQ(s1.sd.false_positives, 0);

  const ScenarioScore s3 = scoreScenario("s3", {dep}, gt);
  EXPECT_EQ(s3.sd.false_positives, 1);
  ASSERT_EQ(s3.false_positive_deps.size(), 1u);
  EXPECT_EQ(s3.false_positive_deps[0].param, "mount.commit");
}

TEST(Scoring, UnlabelledExtractionIsFalsePositive) {
  const Dependency dep = makeDep(DepKind::CpdControl, "x.a", "x.b");
  const ScenarioScore score = scoreScenario("s1", {dep}, {});
  EXPECT_EQ(score.cpd.false_positives, 1);
  ASSERT_EQ(score.unlabelled.size(), 1u);
}

TEST(Scoring, FalseNegativesReported) {
  const Dependency dep = makeDep(DepKind::SdValueRange, "a.p");
  const std::vector<GroundTruthEntry> gt = {makeGt(dep, {"s1"}, {"s1"})};
  const ScenarioScore score = scoreScenario("s1", {}, gt);
  ASSERT_EQ(score.false_negative_ids.size(), 1u);
  EXPECT_EQ(score.false_negative_ids[0], dep.id);
}

TEST(Scoring, FalseNegativeOnlyWhenExpected) {
  const Dependency dep = makeDep(DepKind::SdValueRange, "a.p");
  const std::vector<GroundTruthEntry> gt = {makeGt(dep, {"s1", "s2"}, {"s1"})};
  const ScenarioScore score = scoreScenario("s2", {}, gt);
  EXPECT_TRUE(score.false_negative_ids.empty())
      << "a dependency not expected in s2 is no FN there";
}

TEST(Scoring, DedupeAcrossScenariosKeepsFirst) {
  const Dependency a = makeDep(DepKind::SdValueRange, "a.p");
  const Dependency b = makeDep(DepKind::SdValueRange, "a.q");
  const auto unique = dedupeAcrossScenarios({{a}, {a, b}});
  ASSERT_EQ(unique.size(), 2u);
  EXPECT_EQ(unique[0].param, "a.p");
  EXPECT_EQ(unique[1].param, "a.q");
}

TEST(Scoring, UniqueScoreMarksSpuriousAnywhere) {
  const Dependency dep = makeDep(DepKind::CpdValue, "mount.min", "mount.max");
  // Valid in s3/s4 but extracted (and spurious) in s1 too.
  const std::vector<GroundTruthEntry> gt = {makeGt(dep, {"s3", "s4"}, {"s1", "s3", "s4"})};
  const std::vector<std::vector<Dependency>> per_scenario = {{dep}, {}, {dep}, {dep}};
  const ScenarioScore unique = scoreUnique(per_scenario, {"s1", "s2", "s3", "s4"}, gt);
  EXPECT_EQ(unique.cpd.extracted, 1);
  EXPECT_EQ(unique.cpd.false_positives, 1);
}

TEST(Scoring, UniqueScoreCleanWhenValidEverywhereExtracted) {
  const Dependency dep = makeDep(DepKind::CpdValue, "mount.min", "mount.max");
  const std::vector<GroundTruthEntry> gt = {makeGt(dep, {"s3", "s4"}, {"s3", "s4"})};
  const std::vector<std::vector<Dependency>> per_scenario = {{}, {}, {dep}, {dep}};
  const ScenarioScore unique = scoreUnique(per_scenario, {"s1", "s2", "s3", "s4"}, gt);
  EXPECT_EQ(unique.cpd.false_positives, 0);
}

TEST(Scoring, LevelScoreTruePositives) {
  LevelScore level;
  level.extracted = 32;
  level.false_positives = 3;
  EXPECT_EQ(level.truePositives(), 29);
}

}  // namespace
}  // namespace fsdep::extract
