// fsdep serve protocol tests: an in-process daemon on a temp socket,
// driven through both the raw line handler and real socket round trips.
// Byte-identity against the direct pipeline, memoized warm queries,
// malformed-request tolerance, and clean shutdown.
#include "tools/serve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "corpus/pipeline.h"
#include "extract/scoring.h"
#include "json/json.h"
#include "model/serialization.h"

namespace fsdep::tools {
namespace {

namespace fs = std::filesystem;

std::string testSocketPath(const char* name) {
  return (fs::temp_directory_path() /
          ("fsdep-serve-test-" + std::string(name) + "-" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

json::Object parseResponse(const std::string& line) {
  Result<json::Value> parsed = json::parse(line);
  EXPECT_TRUE(parsed.ok()) << "response is not JSON: " << line;
  EXPECT_TRUE(parsed.value().isObject());
  return parsed.value().asObject();
}

/// What the one-shot CLI prints for `fsdep extract --scenario <id>`.
std::string directExtractText(const std::string& scenario_id) {
  for (const corpus::Scenario& s : corpus::scenarios()) {
    if (s.id != scenario_id) continue;
    const std::vector<model::Dependency> deps = corpus::runScenario(s);
    std::string text;
    for (const model::Dependency& dep : deps) {
      text += dep.summary();
      text.push_back('\n');
    }
    text += "\n" + std::to_string(deps.size()) + " dependencies extracted\n";
    return text;
  }
  ADD_FAILURE() << "unknown scenario " << scenario_id;
  return {};
}

TEST(ServeProtocol, PingAndUnknownTypeAndMalformedLine) {
  ServeDaemon daemon(ServeOptions{testSocketPath("proto")});

  json::Object ping = parseResponse(daemon.handleLine(R"({"id":"7","type":"ping"})"));
  EXPECT_TRUE(ping.find("ok")->asBool());
  EXPECT_EQ(ping.find("id")->asString(), "7");
  EXPECT_EQ(ping.find("stdout")->asString(), "pong");
  EXPECT_TRUE(ping.contains("wall_us"));

  json::Object unknown = parseResponse(daemon.handleLine(R"({"type":"frobnicate"})"));
  EXPECT_FALSE(unknown.find("ok")->asBool());
  EXPECT_NE(unknown.find("error")->asString().find("unknown request type"), std::string::npos);

  json::Object missing = parseResponse(daemon.handleLine(R"({"id":"x"})"));
  EXPECT_FALSE(missing.find("ok")->asBool());

  json::Object garbage = parseResponse(daemon.handleLine("this is not json"));
  EXPECT_FALSE(garbage.find("ok")->asBool());
  EXPECT_NE(garbage.find("error")->asString().find("malformed"), std::string::npos);

  json::Object not_object = parseResponse(daemon.handleLine("[1,2,3]"));
  EXPECT_FALSE(not_object.find("ok")->asBool());
}

TEST(ServeProtocol, ExtractMatchesDirectPipelineByteForByte) {
  ServeDaemon daemon(ServeOptions{testSocketPath("extract")});
  const std::string expected = directExtractText("s1");

  json::Object cold =
      parseResponse(daemon.handleLine(R"({"type":"extract","scenario":"s1"})"));
  ASSERT_TRUE(cold.find("ok")->asBool());
  EXPECT_EQ(cold.find("stdout")->asString(), expected);
  EXPECT_FALSE(cold.find("cached")->asBool());

  json::Object warm =
      parseResponse(daemon.handleLine(R"({"type":"extract","scenario":"s1"})"));
  ASSERT_TRUE(warm.find("ok")->asBool());
  EXPECT_EQ(warm.find("stdout")->asString(), expected) << "memoized answer must not drift";
  EXPECT_TRUE(warm.find("cached")->asBool());
  EXPECT_EQ(daemon.memoHits(), 1u);

  // A different option string is a different memo slot, not a stale hit.
  json::Object other = parseResponse(
      daemon.handleLine(R"({"type":"extract","scenario":"s1","no_bridging":true})"));
  ASSERT_TRUE(other.find("ok")->asBool());
  EXPECT_FALSE(other.find("cached")->asBool());

  json::Object bad =
      parseResponse(daemon.handleLine(R"({"type":"extract","scenario":"s9"})"));
  EXPECT_FALSE(bad.find("ok")->asBool());
  EXPECT_NE(bad.find("error")->asString().find("unknown scenario"), std::string::npos);
}

TEST(ServeProtocol, BlameRequiresParamAndListsDependencies) {
  ServeDaemon daemon(ServeOptions{testSocketPath("blame")});

  json::Object missing = parseResponse(daemon.handleLine(R"({"type":"blame"})"));
  EXPECT_FALSE(missing.find("ok")->asBool());

  json::Object blame = parseResponse(
      daemon.handleLine(R"({"type":"blame","param":"mke2fs.sparse_super2"})"));
  ASSERT_TRUE(blame.find("ok")->asBool());
  EXPECT_NE(blame.find("stdout")->asString().find("mke2fs.sparse_super2"),
            std::string::npos);
}

TEST(ServeProtocol, InvalidateClearsTheMemo) {
  ServeDaemon daemon(ServeOptions{testSocketPath("invalidate")});
  ASSERT_TRUE(parseResponse(daemon.handleLine(R"({"type":"docck"})")).find("ok")->asBool());
  EXPECT_TRUE(
      parseResponse(daemon.handleLine(R"({"type":"docck"})")).find("cached")->asBool());

  ASSERT_TRUE(
      parseResponse(daemon.handleLine(R"({"type":"invalidate"})")).find("ok")->asBool());
  EXPECT_FALSE(
      parseResponse(daemon.handleLine(R"({"type":"docck"})")).find("cached")->asBool())
      << "invalidate must clear the response memo";
}

TEST(ServeSocket, RoundTripAndConcurrentClientsAndShutdown) {
  const std::string socket_path = testSocketPath("socket");
  ServeDaemon daemon(ServeOptions{socket_path});
  const Result<bool> started = daemon.start();
  ASSERT_TRUE(started.ok()) << started.error().message;
  ASSERT_TRUE(daemon.running());

  // Typed client round trip.
  json::Object ping;
  ping["id"] = "t1";
  ping["type"] = "ping";
  const Result<ServeResponse> pong = serveRequest(socket_path, ping);
  ASSERT_TRUE(pong.ok()) << pong.error().message;
  EXPECT_TRUE(pong.value().ok);
  EXPECT_EQ(pong.value().stdout_text, "pong");
  EXPECT_EQ(pong.value().id, "t1");

  // Raw round trip (malformed request must produce an error response,
  // not a dropped connection).
  const Result<std::string> raw = serveRoundTrip(socket_path, "not json at all");
  ASSERT_TRUE(raw.ok()) << raw.error().message;
  EXPECT_FALSE(parseResponse(raw.value()).find("ok")->asBool());

  // Concurrent clients: every thread gets a correct, complete response.
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> good{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      json::Object request;
      request["type"] = "ping";
      const Result<ServeResponse> response = serveRequest(socket_path, request);
      if (response.ok() && response.value().ok && response.value().stdout_text == "pong") {
        good.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(good.load(), kClients);

  // Shutdown request unblocks wait(); the socket file disappears.
  json::Object shutdown;
  shutdown["type"] = "shutdown";
  ASSERT_TRUE(serveRequest(socket_path, shutdown).ok());
  daemon.wait();
  daemon.stop();
  EXPECT_FALSE(fs::exists(socket_path));

  // Clients now get a transport error, not a hang.
  EXPECT_FALSE(serveRoundTrip(socket_path, R"({"type":"ping"})").ok());
}

}  // namespace
}  // namespace fsdep::tools
