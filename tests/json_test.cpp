#include <gtest/gtest.h>

#include "json/json.h"

namespace fsdep::json {
namespace {

TEST(JsonValue, Kinds) {
  EXPECT_TRUE(Value(nullptr).isNull());
  EXPECT_TRUE(Value(true).isBool());
  EXPECT_TRUE(Value(7).isInt());
  EXPECT_TRUE(Value(3.5).isDouble());
  EXPECT_TRUE(Value("hi").isString());
  EXPECT_TRUE(Value(Array{}).isArray());
  EXPECT_TRUE(Value(Object{}).isObject());
}

TEST(JsonValue, NumericCoercion) {
  EXPECT_EQ(Value(3.9).asInt(), 3);
  EXPECT_DOUBLE_EQ(Value(7).asDouble(), 7.0);
  EXPECT_EQ(Value("nope").asInt(42), 42);
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object o;
  o["zulu"] = 1;
  o["alpha"] = 2;
  o["mike"] = 3;
  std::vector<std::string> keys;
  for (const auto& [k, v] : o) keys.push_back(k);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "zulu");
  EXPECT_EQ(keys[1], "alpha");
  EXPECT_EQ(keys[2], "mike");
}

TEST(JsonObject, FindAndOverwrite) {
  Object o;
  o["k"] = 1;
  o["k"] = 2;
  ASSERT_EQ(o.size(), 1u);
  EXPECT_EQ(o.find("k")->asInt(), 2);
  EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").value().isNull());
  EXPECT_EQ(parse("true").value().asBool(), true);
  EXPECT_EQ(parse("false").value().asBool(), false);
  EXPECT_EQ(parse("123").value().asInt(), 123);
  EXPECT_EQ(parse("-45").value().asInt(), -45);
  EXPECT_DOUBLE_EQ(parse("2.5").value().asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").value().asDouble(), 1000.0);
  EXPECT_EQ(parse("\"hey\"").value().asString(), "hey");
}

TEST(JsonParse, Escapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").value().asString(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("A")").value().asString(), "A");
  EXPECT_EQ(parse(R"("é")").value().asString(), "\xc3\xa9");
}

TEST(JsonParse, NestedStructure) {
  const auto v = parse(R"({"deps": [{"id": 1, "ok": true}, {"id": 2}], "total": 2})");
  ASSERT_TRUE(v.ok());
  const Object& o = v.value().asObject();
  ASSERT_TRUE(o.contains("deps"));
  const Array& deps = o.find("deps")->asArray();
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].asObject().find("id")->asInt(), 1);
  EXPECT_TRUE(deps[0].asObject().find("ok")->asBool());
  EXPECT_EQ(o.find("total")->asInt(), 2);
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("{\"a\" 1}").ok());
  EXPECT_FALSE(parse("tru").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("1 2").ok()) << "trailing garbage must be rejected";
}

TEST(JsonParse, ErrorReportsLine) {
  const auto v = parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("line 3"), std::string::npos);
}

TEST(JsonWrite, CompactAndPretty) {
  Object o;
  o["name"] = "fsdep";
  Array arr;
  arr.emplace_back(1);
  arr.emplace_back(2);
  o["values"] = std::move(arr);
  EXPECT_EQ(writeCompact(o), R"({"name":"fsdep","values":[1,2]})");
  const std::string pretty = writePretty(o);
  EXPECT_NE(pretty.find("\n  \"name\": \"fsdep\""), std::string::npos);
  EXPECT_EQ(pretty.back(), '\n');
}

TEST(JsonWrite, EscapesControlCharacters) {
  const std::string out = writeCompact(Value(std::string("a\x01") + "\n"));
  EXPECT_EQ(out, R"("a\u0001\n")");
}

TEST(JsonRoundTrip, EqualAfterReparse) {
  const char* documents[] = {
      "null",
      "[1,2,3]",
      R"({"a":{"b":[true,false,null]},"c":"text with \"quotes\""})",
      R"([{"nested":[[1],[2,[3]]]},-17,0.25])",
  };
  for (const char* doc : documents) {
    const auto first = parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    const std::string compact = writeCompact(first.value());
    const auto second = parse(compact);
    ASSERT_TRUE(second.ok()) << compact;
    EXPECT_TRUE(first.value() == second.value()) << doc;
    // Pretty output must reparse to the same value too.
    const auto third = parse(writePretty(first.value()));
    ASSERT_TRUE(third.ok());
    EXPECT_TRUE(first.value() == third.value()) << doc;
  }
}

class JsonIntRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(JsonIntRoundTrip, PreservesValue) {
  const std::int64_t value = GetParam();
  const std::string text = writeCompact(Value(value));
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().isInt());
  EXPECT_EQ(parsed.value().asInt(), value);
}

INSTANTIATE_TEST_SUITE_P(Values, JsonIntRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -65536, 1LL << 40, -(1LL << 40),
                                           9007199254740991LL));

}  // namespace
}  // namespace fsdep::json
