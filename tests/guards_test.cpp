// Unit tests for the guard analysis building blocks: DNF normalization of
// violation conditions (including De Morgan flips), bit-test mask
// recognition, the power-of-two idiom, and member-read discovery.
#include <gtest/gtest.h>

#include "ast/parser.h"
#include "extract/guards.h"
#include "lex/lexer.h"
#include "sema/sema.h"

namespace fsdep::extract {
namespace {

using namespace ast;

struct Parsed {
  std::unique_ptr<TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  const Expr* expr = nullptr;
};

/// Parses `void f(...){ if (<cond>) {} }` and returns the condition.
Parsed parseCondition(const std::string& cond) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const std::string program =
      "struct sb { unsigned int compat; unsigned int blocks; };\n"
      "void f(struct sb *s, long a, long b, int flag1, int flag2) {\n"
      "  if (" + cond + ") { a = 0; }\n"
      "}\n";
  const FileId file = sm.addBuffer("g.c", program);
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  Parsed p;
  p.tu = parser.parseTranslationUnit("g.c");
  EXPECT_FALSE(diags.hasErrors()) << diags.render(sm);
  p.sema = std::make_unique<sema::Sema>(*p.tu, diags);
  p.sema->run();
  const FunctionDecl* fn = p.tu->findFunction("f");
  const auto& body = static_cast<const CompoundStmt&>(*fn->body);
  const auto& if_stmt = static_cast<const IfStmt&>(*body.body.at(0));
  p.expr = if_stmt.cond.get();
  return p;
}

std::string renderDnf(const std::vector<Violation>& dnf) {
  std::string out;
  for (std::size_t i = 0; i < dnf.size(); ++i) {
    if (i != 0) out += " OR ";
    out += '(';
    for (std::size_t j = 0; j < dnf[i].size(); ++j) {
      if (j != 0) out += " AND ";
      const Atom& atom = dnf[i][j];
      if (atom.negated) out += '!';
      if (atom.is_comparison) {
        out += exprToString(*atom.lhs) + ' ' + binaryOpSpelling(atom.cmp) + ' ' +
               exprToString(*atom.rhs);
      } else {
        out += exprToString(*atom.expr);
      }
    }
    out += ')';
  }
  return out;
}

TEST(Dnf, SingleAtom) {
  const Parsed p = parseCondition("flag1");
  EXPECT_EQ(renderDnf(toDnf(*p.expr, false)), "(flag1)");
  EXPECT_EQ(renderDnf(toDnf(*p.expr, true)), "(!flag1)");
}

TEST(Dnf, ConjunctionStaysOneViolation) {
  const Parsed p = parseCondition("flag1 && flag2");
  EXPECT_EQ(renderDnf(toDnf(*p.expr, false)), "(flag1 AND flag2)");
}

TEST(Dnf, DisjunctionSplits) {
  const Parsed p = parseCondition("a < 1 || a > 9");
  const auto dnf = toDnf(*p.expr, false);
  EXPECT_EQ(renderDnf(dnf), "(a < 1) OR (a > 9)");
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].size(), 1u);
  EXPECT_EQ(dnf[1].size(), 1u);
}

TEST(Dnf, NegatedConjunctionBecomesDisjunction) {
  // !(A && B) == !A || !B (De Morgan).
  const Parsed p = parseCondition("flag1 && flag2");
  const auto dnf = toDnf(*p.expr, true);
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_TRUE(dnf[0][0].negated);
  EXPECT_TRUE(dnf[1][0].negated);
}

TEST(Dnf, NegatedDisjunctionBecomesConjunction) {
  // !(A || B) == !A && !B.
  const Parsed p = parseCondition("flag1 || flag2");
  const auto dnf = toDnf(*p.expr, true);
  ASSERT_EQ(dnf.size(), 1u);
  ASSERT_EQ(dnf[0].size(), 2u);
  EXPECT_TRUE(dnf[0][0].negated);
  EXPECT_TRUE(dnf[0][1].negated);
}

TEST(Dnf, CrossProductOfDisjunctions) {
  // (A || B) && (C || D) -> 4 violations.
  const Parsed p = parseCondition("(flag1 || flag2) && (a < 1 || b > 2)");
  EXPECT_EQ(toDnf(*p.expr, false).size(), 4u);
}

TEST(Dnf, DoubleNegationCancels) {
  const Parsed p = parseCondition("!!flag1");
  const auto dnf = toDnf(*p.expr, false);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_FALSE(dnf[0][0].negated);
}

TEST(Dnf, ComparisonPolarityFoldsIntoOperator) {
  // !(a < b) becomes the atom a >= b, not a negated atom.
  const Parsed p = parseCondition("a < b");
  const auto dnf = toDnf(*p.expr, true);
  ASSERT_EQ(dnf.size(), 1u);
  const Atom& atom = dnf[0][0];
  EXPECT_TRUE(atom.is_comparison);
  EXPECT_FALSE(atom.negated);
  EXPECT_EQ(atom.cmp, BinaryOp::Ge);
}

TEST(Dnf, EqualsZeroNormalizesToNegatedFlag) {
  const Parsed p = parseCondition("flag1 == 0");
  const auto dnf = toDnf(*p.expr, false);
  ASSERT_EQ(dnf.size(), 1u);
  const Atom& atom = dnf[0][0];
  EXPECT_FALSE(atom.is_comparison);
  EXPECT_TRUE(atom.negated);
  EXPECT_EQ(exprToString(*atom.expr), "flag1");
}

TEST(Dnf, NotEqualsZeroNormalizesToPositiveFlag) {
  const Parsed p = parseCondition("flag1 != 0");
  const auto dnf = toDnf(*p.expr, false);
  const Atom& atom = dnf[0][0];
  EXPECT_FALSE(atom.is_comparison);
  EXPECT_FALSE(atom.negated);
}

TEST(BitTest, MaskFromEnumConstant) {
  const Parsed p = parseCondition("s->compat & 16");
  const auto mask = bitTestMask(*p.expr, *p.sema);
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(*mask, 16);
}

TEST(BitTest, MaskOnEitherSide) {
  const Parsed p = parseCondition("512 & s->compat");
  const auto mask = bitTestMask(*p.expr, *p.sema);
  ASSERT_TRUE(mask.has_value());
  EXPECT_EQ(*mask, 512);
}

TEST(BitTest, NonConstantHasNoMask) {
  const Parsed p = parseCondition("a & b");
  EXPECT_FALSE(bitTestMask(*p.expr, *p.sema).has_value());
}

TEST(PowerOfTwo, RecognizesTheIdiom) {
  const Parsed p = parseCondition("a & (a - 1)");
  EXPECT_TRUE(isPowerOfTwoTest(*p.expr));
}

TEST(PowerOfTwo, RejectsMismatchedOperands) {
  const Parsed p = parseCondition("a & (b - 1)");
  EXPECT_FALSE(isPowerOfTwoTest(*p.expr));
}

TEST(PowerOfTwo, RejectsPlainBitTest) {
  const Parsed p = parseCondition("a & 8");
  EXPECT_FALSE(isPowerOfTwoTest(*p.expr));
}

TEST(MemberRead, FindsNestedMember) {
  const Parsed p = parseCondition("(s->blocks + 1) > a");
  const MemberExpr* member = findMemberRead(*p.expr);
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->member, "blocks");
}

TEST(MemberRead, NullWhenNoMember) {
  const Parsed p = parseCondition("a + b > 1");
  EXPECT_EQ(findMemberRead(*p.expr), nullptr);
}

}  // namespace
}  // namespace fsdep::extract
