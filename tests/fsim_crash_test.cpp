// CrashCk end-to-end: enumerating every crash point of the fsim tools
// must never find silent corruption in the fixed toolchain, must find
// it in the shipped (Figure 1) resize, and must be bit-for-bit
// deterministic in the (schedule, seed) pair.
#include <gtest/gtest.h>

#include "tools/crashck.h"

#include "fsim/digest.h"
#include "fsim/image.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "tools/campaign.h"

namespace fsdep::tools {
namespace {

using namespace fsim;

CrashOpReport enumerate(const std::string& op, std::uint64_t seed = 42) {
  Result<CrashOpReport> report = runCrashOp(op, seed);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().message);
  return std::move(report.value());
}

TEST(CrashCk, MkfsHasNoSilentCorruptionPoints) {
  const CrashOpReport report = enumerate("mkfs");
  EXPECT_GT(report.total_writes, 0u);
  EXPECT_EQ(report.points.size(), report.total_writes + 1);
  EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0) << report.histogram();
  EXPECT_EQ(report.countOf(CrashOutcome::DataLoss), 0) << report.histogram();
  // The control point is the fault-free run: a healthy filesystem.
  EXPECT_TRUE(report.points.back().control);
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered);
}

TEST(CrashCk, FixedResizeHasNoSilentCorruptionPoints) {
  const CrashOpReport report = enumerate("resize");
  EXPECT_GT(report.total_writes, 0u);
  EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0) << report.histogram();
  EXPECT_EQ(report.countOf(CrashOutcome::DataLoss), 0) << report.histogram();
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered);
}

TEST(CrashCk, BuggyResizeShowsSilentCorruption) {
  const CrashOpReport report = enumerate("resize-buggy");
  EXPECT_GE(report.countOf(CrashOutcome::SilentCorruption), 1) << report.histogram();
  // The completed run itself is the lie: clean superblock, wrong counts.
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::SilentCorruption);
}

TEST(CrashCk, MountJournalCycleAlwaysRecovers) {
  const CrashOpReport report = enumerate("mount");
  // Every crash point of a journalled mount/write/umount cycle replays
  // to a consistent image with the canary intact.
  EXPECT_EQ(report.countOf(CrashOutcome::Recovered),
            static_cast<int>(report.points.size()))
      << report.histogram();
}

TEST(CrashCk, RemainingOpsNeverCorruptSilently) {
  for (const char* op : {"defrag", "tune"}) {
    const CrashOpReport report = enumerate(op);
    EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0)
        << op << ": " << report.histogram();
    EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered) << op;
  }
}

TEST(CrashCk, SameSeedSameReport) {
  const CrashOpReport a = enumerate("resize-buggy", 1234);
  const CrashOpReport b = enumerate("resize-buggy", 1234);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.total_writes, b.total_writes);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].outcome, b.points[i].outcome) << i;
    EXPECT_EQ(a.points[i].detail, b.points[i].detail) << i;
  }
}

TEST(CrashCk, FullCampaignFindsExactlyTheFigure1Lie) {
  const Result<CrashCkReport> result = runCrashCk(CrashCkOptions{.seed = 42});
  ASSERT_TRUE(result.ok());
  const CrashCkReport& report = result.value();
  EXPECT_EQ(report.ops.size(), crashCkOpNames().size());
  // The only silent-corruption point in the whole campaign comes from
  // the buggy resize.
  for (const CrashOpReport& op : report.ops) {
    if (op.op == "resize-buggy") {
      EXPECT_GE(op.countOf(CrashOutcome::SilentCorruption), 1);
    } else {
      EXPECT_EQ(op.countOf(CrashOutcome::SilentCorruption), 0)
          << op.op << ": " << op.histogram();
    }
  }
}

TEST(CrashCk, UnknownOpIsAnError) {
  EXPECT_FALSE(runCrashOp("chkdsk", 42).ok());
  CrashCkOptions options;
  options.ops = {"chkdsk"};
  EXPECT_FALSE(runCrashCk(options).ok());
}

TEST(CrashCk, ClassifierCallsHealthyImageRecovered) {
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, CrashCanary{}, detail),
            CrashOutcome::Recovered)
      << detail;
}

TEST(CrashCk, ClassifierDetectsLostCanary) {
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  CrashCanary canary;
  {
    auto mounted = MountTool::mount(device, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    auto ino = mounted.value().createFile(4096, 0);
    ASSERT_TRUE(ino.ok());
    canary.ino = ino.value();
    canary.size_bytes = 4096;
    ASSERT_TRUE(mounted.value().removeFile(ino.value()).ok());
    mounted.value().unmount();
  }
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, canary, detail), CrashOutcome::DataLoss)
      << detail;
}

TEST(CrashCk, ClassifierHandlesCanarylessInterruptedMkfs) {
  // Crash at the very first persisted write of mkfs: nothing valid ever
  // reaches the device. With no canary (mkfs has nothing to lose) the
  // verdict must be NeedsRepair — never DataLoss.
  BlockDevice device(8192, 1024);
  FaultPlan plan;
  plan.seed = 42;
  plan.crash_at_write = 0;
  plan.torn_mode = TornMode::Seeded;
  device.setFaultPlan(plan);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  try {
    (void)MkfsTool::format(device, o);
  } catch (const IoError&) {
  }
  device.clearFaults();
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, CrashCanary{}, detail),
            CrashOutcome::NeedsRepair)
      << detail;
}

TEST(CrashCk, ClassifierCallsUnfixableImageNeedsRepair) {
  // Destroy the superblock magic: fsck cannot even identify a
  // filesystem to fix. The classifier must degrade to NeedsRepair
  // instead of crashing or calling the wreckage Recovered.
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  FsImage image(device);
  Superblock sb = image.loadSuperblock();
  sb.magic = 0;
  image.storeSuperblock(sb);
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, CrashCanary{}, detail),
            CrashOutcome::NeedsRepair)
      << detail;
}

TEST(CrashCk, ClassifierFlagsHandBuiltLieAsSilentCorruption) {
  // A superblock that passes its own checksum and claims to be clean,
  // but whose free-block accounting is wrong: the Figure 1 shape,
  // built by hand instead of by the buggy resize.
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  FsImage image(device);
  Superblock sb = image.loadSuperblock();
  sb.free_blocks_count += 64;  // the lie
  sb.checksum = sb.computeChecksum();  // ...sworn under a fresh checksum
  image.storeSuperblock(sb);
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, CrashCanary{}, detail),
            CrashOutcome::SilentCorruption)
      << detail;
}

TEST(CrashCk, DoubleFaultScheduleClassifiesDeterministically) {
  // Crash plus a transient write fault in the same run: the campaign
  // cell must classify it (any class) and do so reproducibly.
  tools::FaultEvent crash;
  crash.kind = tools::FaultEventKind::CrashAtWrite;
  crash.write_index = 3;
  tools::FaultEvent transient;
  transient.kind = tools::FaultEventKind::TransientWrite;
  transient.block = 2;
  transient.failures = 4;  // beyond the retry policy: the fault surfaces
  const tools::FaultSchedule schedule = {crash, transient};

  const auto a = tools::runCampaignCell(tools::baselineConfig(), "mount", schedule, 42);
  const auto b = tools::runCampaignCell(tools::baselineConfig(), "mount", schedule, 42);
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().outcome, b.value().outcome);
  EXPECT_EQ(a.value().digest, b.value().digest);
  EXPECT_NE(a.value().digest, 0u);
}

TEST(StateDigest, IdenticalImagesHashIdentically) {
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  BlockDevice a(8192, 1024);
  BlockDevice b(8192, 1024);
  ASSERT_TRUE(MkfsTool::format(a, o).ok());
  ASSERT_TRUE(MkfsTool::format(b, o).ok());
  EXPECT_EQ(imageStateDigest(a), imageStateDigest(b));
  EXPECT_EQ(imageStateDigest(a), imageStateDigest(a));  // pure
}

TEST(StateDigest, SensitiveToLogicalMetadata) {
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  BlockDevice device(8192, 1024);
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  const std::uint64_t before = imageStateDigest(device);
  {
    auto mounted = MountTool::mount(device, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    ASSERT_TRUE(mounted.value().createFile(4096, 0).ok());
    mounted.value().unmount();
  }
  EXPECT_NE(imageStateDigest(device), before);
}

TEST(StateDigest, InsensitiveToMountCountHistory) {
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  BlockDevice device(8192, 1024);
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  const std::uint64_t before = imageStateDigest(device);
  FsImage image(device);
  Superblock sb = image.loadSuperblock();
  sb.mount_count += 7;  // history, not state
  sb.checksum = sb.computeChecksum();
  image.storeSuperblock(sb);
  EXPECT_EQ(imageStateDigest(device), before);
}

TEST(StateDigest, RawFallbackDistinguishesWreckage) {
  // No valid filesystem: the digest falls back to hashing the raw
  // metadata region, so distinct wreckage still lands in distinct
  // equivalence classes.
  BlockDevice blank(8192, 1024);
  BlockDevice scribbled(8192, 1024);
  const std::uint8_t junk[4] = {0xde, 0xad, 0xbe, 0xef};
  scribbled.writeBytes(2048, junk);
  EXPECT_NE(imageStateDigest(blank), imageStateDigest(scribbled));
}

}  // namespace
}  // namespace fsdep::tools
