// CrashCk end-to-end: enumerating every crash point of the fsim tools
// must never find silent corruption in the fixed toolchain, must find
// it in the shipped (Figure 1) resize, and must be bit-for-bit
// deterministic in the (schedule, seed) pair.
#include <gtest/gtest.h>

#include "tools/crashck.h"

#include "fsim/image.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"

namespace fsdep::tools {
namespace {

using namespace fsim;

CrashOpReport enumerate(const std::string& op, std::uint64_t seed = 42) {
  Result<CrashOpReport> report = runCrashOp(op, seed);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().message);
  return std::move(report.value());
}

TEST(CrashCk, MkfsHasNoSilentCorruptionPoints) {
  const CrashOpReport report = enumerate("mkfs");
  EXPECT_GT(report.total_writes, 0u);
  EXPECT_EQ(report.points.size(), report.total_writes + 1);
  EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0) << report.histogram();
  EXPECT_EQ(report.countOf(CrashOutcome::DataLoss), 0) << report.histogram();
  // The control point is the fault-free run: a healthy filesystem.
  EXPECT_TRUE(report.points.back().control);
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered);
}

TEST(CrashCk, FixedResizeHasNoSilentCorruptionPoints) {
  const CrashOpReport report = enumerate("resize");
  EXPECT_GT(report.total_writes, 0u);
  EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0) << report.histogram();
  EXPECT_EQ(report.countOf(CrashOutcome::DataLoss), 0) << report.histogram();
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered);
}

TEST(CrashCk, BuggyResizeShowsSilentCorruption) {
  const CrashOpReport report = enumerate("resize-buggy");
  EXPECT_GE(report.countOf(CrashOutcome::SilentCorruption), 1) << report.histogram();
  // The completed run itself is the lie: clean superblock, wrong counts.
  EXPECT_EQ(report.points.back().outcome, CrashOutcome::SilentCorruption);
}

TEST(CrashCk, MountJournalCycleAlwaysRecovers) {
  const CrashOpReport report = enumerate("mount");
  // Every crash point of a journalled mount/write/umount cycle replays
  // to a consistent image with the canary intact.
  EXPECT_EQ(report.countOf(CrashOutcome::Recovered),
            static_cast<int>(report.points.size()))
      << report.histogram();
}

TEST(CrashCk, RemainingOpsNeverCorruptSilently) {
  for (const char* op : {"defrag", "tune"}) {
    const CrashOpReport report = enumerate(op);
    EXPECT_EQ(report.countOf(CrashOutcome::SilentCorruption), 0)
        << op << ": " << report.histogram();
    EXPECT_EQ(report.points.back().outcome, CrashOutcome::Recovered) << op;
  }
}

TEST(CrashCk, SameSeedSameReport) {
  const CrashOpReport a = enumerate("resize-buggy", 1234);
  const CrashOpReport b = enumerate("resize-buggy", 1234);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.total_writes, b.total_writes);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].outcome, b.points[i].outcome) << i;
    EXPECT_EQ(a.points[i].detail, b.points[i].detail) << i;
  }
}

TEST(CrashCk, FullCampaignFindsExactlyTheFigure1Lie) {
  const Result<CrashCkReport> result = runCrashCk(CrashCkOptions{.seed = 42});
  ASSERT_TRUE(result.ok());
  const CrashCkReport& report = result.value();
  EXPECT_EQ(report.ops.size(), crashCkOpNames().size());
  // The only silent-corruption point in the whole campaign comes from
  // the buggy resize.
  for (const CrashOpReport& op : report.ops) {
    if (op.op == "resize-buggy") {
      EXPECT_GE(op.countOf(CrashOutcome::SilentCorruption), 1);
    } else {
      EXPECT_EQ(op.countOf(CrashOutcome::SilentCorruption), 0)
          << op.op << ": " << op.histogram();
    }
  }
}

TEST(CrashCk, UnknownOpIsAnError) {
  EXPECT_FALSE(runCrashOp("chkdsk", 42).ok());
  CrashCkOptions options;
  options.ops = {"chkdsk"};
  EXPECT_FALSE(runCrashCk(options).ok());
}

TEST(CrashCk, ClassifierCallsHealthyImageRecovered) {
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, CrashCanary{}, detail),
            CrashOutcome::Recovered)
      << detail;
}

TEST(CrashCk, ClassifierDetectsLostCanary) {
  BlockDevice device(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  ASSERT_TRUE(MkfsTool::format(device, o).ok());
  CrashCanary canary;
  {
    auto mounted = MountTool::mount(device, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    auto ino = mounted.value().createFile(4096, 0);
    ASSERT_TRUE(ino.ok());
    canary.ino = ino.value();
    canary.size_bytes = 4096;
    ASSERT_TRUE(mounted.value().removeFile(ino.value()).ok());
    mounted.value().unmount();
  }
  std::string detail;
  EXPECT_EQ(classifyPostCrashImage(device, canary, detail), CrashOutcome::DataLoss)
      << detail;
}

}  // namespace
}  // namespace fsdep::tools
