#include <gtest/gtest.h>

#include "fsim/block_device.h"
#include "fsim/image.h"
#include "fsim/layout.h"

namespace fsdep::fsim {
namespace {

TEST(BlockDevice, ReadWriteRoundTrip) {
  BlockDevice dev(16, 1024);
  std::vector<std::uint8_t> out(1024, 0xAB);
  dev.writeBlock(3, out);
  std::vector<std::uint8_t> in(1024);
  dev.readBlock(3, in);
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.readCount(), 1u);
  EXPECT_EQ(dev.writeCount(), 1u);
}

TEST(BlockDevice, OutOfRangeThrows) {
  BlockDevice dev(4, 1024);
  std::vector<std::uint8_t> buf(1024);
  EXPECT_THROW(dev.readBlock(4, buf), IoError);
  EXPECT_THROW(dev.writeBlock(99, buf), IoError);
}

TEST(BlockDevice, RejectsNonPowerOfTwoBlockSize) {
  EXPECT_THROW(BlockDevice(4, 1000), IoError);
  EXPECT_THROW(BlockDevice(4, 0), IoError);
}

TEST(BlockDevice, ByteAccess) {
  BlockDevice dev(4, 1024);
  const std::uint8_t payload[] = {1, 2, 3, 4};
  dev.writeBytes(1024, payload);
  std::uint8_t in[4] = {};
  dev.readBytes(1024, in);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[3], 4);
  EXPECT_THROW(dev.readBytes(4096 - 2, in), IoError);
}

TEST(BlockDevice, FaultInjection) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024);
  dev.injectReadError(2);
  dev.injectWriteError(3);
  EXPECT_THROW(dev.readBlock(2, buf), IoError);
  EXPECT_THROW(dev.writeBlock(3, buf), IoError);
  dev.clearFaults();
  EXPECT_NO_THROW(dev.readBlock(2, buf));
  EXPECT_NO_THROW(dev.writeBlock(3, buf));
}

TEST(BlockDevice, CorruptionFlipsBytes) {
  BlockDevice dev(4, 1024);
  std::vector<std::uint8_t> zero(1024, 0);
  dev.writeBlock(1, zero);
  dev.corruptBlock(1, 10);
  std::vector<std::uint8_t> in(1024);
  dev.readBlock(1, in);
  EXPECT_EQ(in[10], 0xFF);
  EXPECT_EQ(in[11], 0x00);
}

TEST(BlockDevice, ResizeGrowsZeroed) {
  BlockDevice dev(4, 1024);
  dev.resize(8);
  EXPECT_EQ(dev.blockCount(), 8u);
  std::vector<std::uint8_t> in(1024, 0xFF);
  dev.readBlock(7, in);
  for (const std::uint8_t b : in) EXPECT_EQ(b, 0);
}

TEST(BlockDevice, CrashTriggerFreezesDevice) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 0xAA);
  FaultPlan plan;
  plan.crash_at_write = 2;
  dev.setFaultPlan(plan);
  dev.writeBlock(0, buf);
  dev.writeBlock(1, buf);
  EXPECT_THROW(dev.writeBlock(2, buf), IoError);
  EXPECT_TRUE(dev.frozen());
  // The machine lost power: everything fails until "reboot".
  EXPECT_THROW(dev.writeBlock(3, buf), IoError);
  EXPECT_THROW(dev.readBlock(0, buf), IoError);
  dev.clearFaults();
  EXPECT_FALSE(dev.frozen());
  EXPECT_NO_THROW(dev.readBlock(0, buf));
}

TEST(BlockDevice, TornWritePersistsPrefixOnly) {
  BlockDevice dev(4, 1024);
  std::vector<std::uint8_t> ones(1024, 0xFF);
  FaultPlan plan;
  plan.crash_at_write = 0;
  plan.torn_mode = TornMode::Prefix;
  plan.torn_prefix_bytes = 16;
  dev.setFaultPlan(plan);
  EXPECT_THROW(dev.writeBlock(2, ones), IoError);
  dev.clearFaults();
  std::vector<std::uint8_t> in(1024);
  dev.readBlock(2, in);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(in[i], 0xFF) << i;
  for (std::size_t i = 16; i < 1024; ++i) ASSERT_EQ(in[i], 0x00) << i;
}

TEST(BlockDevice, SeededTornWriteIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    BlockDevice dev(4, 1024);
    std::vector<std::uint8_t> ones(1024, 0xFF);
    FaultPlan plan;
    plan.seed = seed;
    plan.crash_at_write = 1;
    plan.torn_mode = TornMode::Seeded;
    dev.setFaultPlan(plan);
    dev.writeBlock(0, ones);
    EXPECT_THROW(dev.writeBlock(1, ones), IoError);
    dev.clearFaults();
    std::vector<std::uint8_t> in(1024);
    dev.readBlock(1, in);
    return in;
  };
  EXPECT_EQ(run(7), run(7));
  // Different seeds tear at different lengths (for these two they do).
  EXPECT_NE(run(7), run(8));
}

TEST(BlockDevice, FailAfterWritesKillsDevice) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 1);
  FaultPlan plan;
  plan.fail_after_writes = 2;
  dev.setFaultPlan(plan);
  dev.writeBlock(0, buf);
  dev.writeBlock(1, buf);
  EXPECT_THROW(dev.writeBlock(2, buf), IoError);
  // Dead is permanent — the retry policy must not resurrect it.
  EXPECT_THROW(dev.writeBlock(2, buf), IoError);
  // Reads still work: the device stopped accepting writes, not reads.
  EXPECT_NO_THROW(dev.readBlock(0, buf));
  dev.clearFaults();
  EXPECT_NO_THROW(dev.writeBlock(2, buf));
}

TEST(BlockDevice, TransientErrorClearsUnderRetry) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 2);
  FaultPlan plan;
  plan.transients.push_back(TransientFault{.block = 3, .failures = 2, .on_write = true});
  dev.setFaultPlan(plan);
  // Default policy allows 3 attempts; the fault clears after 2 failures.
  EXPECT_NO_THROW(dev.writeBlock(3, buf));
  EXPECT_EQ(dev.retryCount(), 2u);
  EXPECT_GT(dev.backoffTicks(), 0u);
  EXPECT_EQ(dev.writeCount(), 1u);
}

TEST(BlockDevice, TransientOutlastingRetryBudgetFails) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 3);
  FaultPlan plan;
  plan.transients.push_back(TransientFault{.block = 3, .failures = 5, .on_write = true});
  dev.setFaultPlan(plan);
  dev.setRetryPolicy(RetryPolicy{.max_attempts = 3, .backoff_base = 2});
  EXPECT_THROW(dev.writeBlock(3, buf), IoError);
  EXPECT_EQ(dev.retryCount(), 2u);  // attempts 1 and 2 were retried
  EXPECT_EQ(dev.backoffTicks(), 2u + 4u);
  // Two failures remain; a wider budget gets through them.
  dev.setRetryPolicy(RetryPolicy{.max_attempts = 4, .backoff_base = 1});
  EXPECT_NO_THROW(dev.writeBlock(3, buf));
}

TEST(BlockDevice, TransientReadFaults) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024);
  FaultPlan plan;
  plan.transients.push_back(TransientFault{.block = 1, .failures = 1, .on_write = false});
  dev.setFaultPlan(plan);
  EXPECT_NO_THROW(dev.readBlock(1, buf));  // retried once, then clean
  EXPECT_EQ(dev.retryCount(), 1u);
}

TEST(BlockDevice, PlanWriteIndexCountsPersistedWritesOnly) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 4);
  FaultPlan plan;
  plan.transients.push_back(TransientFault{.block = 2, .failures = 1, .on_write = true});
  dev.setFaultPlan(plan);
  dev.writeBlock(0, buf);
  dev.writeBlock(2, buf);  // one failed attempt + one persisted write
  EXPECT_EQ(dev.planWriteIndex(), 2u);
  EXPECT_EQ(dev.writeCount(), 2u);
  EXPECT_EQ(dev.retryCount(), 1u);
}

TEST(BlockDevice, ResetStatsKeepsFaults) {
  BlockDevice dev(8, 1024);
  std::vector<std::uint8_t> buf(1024, 5);
  dev.writeBlock(0, buf);
  dev.readBlock(0, buf);
  dev.injectWriteError(4);
  dev.resetStats();
  EXPECT_EQ(dev.readCount(), 0u);
  EXPECT_EQ(dev.writeCount(), 0u);
  EXPECT_EQ(dev.retryCount(), 0u);
  EXPECT_EQ(dev.backoffTicks(), 0u);
  // resetStats observes, clearFaults heals — they are independent.
  EXPECT_THROW(dev.writeBlock(4, buf), IoError);
}

TEST(Bitmap, SetGetCount) {
  Bitmap bm(100);
  EXPECT_FALSE(bm.get(5));
  bm.set(5, true);
  bm.set(99, true);
  EXPECT_TRUE(bm.get(5));
  EXPECT_TRUE(bm.get(99));
  EXPECT_EQ(bm.countSet(100), 2u);
  bm.set(5, false);
  EXPECT_EQ(bm.countSet(100), 1u);
}

TEST(Bitmap, OutOfRangeReadsAsUsed) {
  Bitmap bm(8);
  EXPECT_TRUE(bm.get(8));
  EXPECT_TRUE(bm.get(1000));
}

TEST(Superblock, SerializeRoundTrip) {
  Superblock sb;
  sb.blocks_count = 123456;
  sb.free_blocks_count = 777;
  sb.log_block_size = 2;
  sb.feature_compat = kCompatSparseSuper2;
  sb.feature_incompat = kIncompatExtents | kIncompat64Bit;
  sb.backup_bgs[0] = 1;
  sb.backup_bgs[1] = 31;
  sb.inode_size = 256;
  sb.volume_name[0] = 'v';
  sb.updateChecksum();

  std::uint8_t buf[Superblock::kDiskSize];
  sb.serialize(buf);
  const Superblock back = Superblock::deserialize(buf);
  EXPECT_EQ(back.blocks_count, sb.blocks_count);
  EXPECT_EQ(back.free_blocks_count, sb.free_blocks_count);
  EXPECT_EQ(back.feature_incompat, sb.feature_incompat);
  EXPECT_EQ(back.backup_bgs[1], 31u);
  EXPECT_EQ(back.volume_name[0], 'v');
  EXPECT_EQ(back.checksum, sb.checksum);
  EXPECT_EQ(back.computeChecksum(), back.checksum);
}

TEST(Superblock, ChecksumDetectsTampering) {
  Superblock sb;
  sb.blocks_count = 4096;
  sb.updateChecksum();
  sb.blocks_count = 4097;
  EXPECT_NE(sb.computeChecksum(), sb.checksum);
}

TEST(Superblock, GroupGeometry) {
  Superblock sb;
  sb.first_data_block = 1;
  sb.blocks_count = 2048;
  sb.blocks_per_group = 512;
  EXPECT_EQ(sb.groupCount(), 4u);
  EXPECT_EQ(sb.blocksInGroup(0), 512u);
  EXPECT_EQ(sb.blocksInGroup(3), 511u);  // last group is short by one
  EXPECT_EQ(sb.blocksInGroup(4), 0u);
}

TEST(Layout, SparseBackupGroups) {
  EXPECT_TRUE(isSparseBackupGroup(0));
  EXPECT_TRUE(isSparseBackupGroup(1));
  EXPECT_TRUE(isSparseBackupGroup(3));
  EXPECT_TRUE(isSparseBackupGroup(9));
  EXPECT_TRUE(isSparseBackupGroup(27));
  EXPECT_TRUE(isSparseBackupGroup(5));
  EXPECT_TRUE(isSparseBackupGroup(25));
  EXPECT_TRUE(isSparseBackupGroup(7));
  EXPECT_TRUE(isSparseBackupGroup(49));
  EXPECT_FALSE(isSparseBackupGroup(2));
  EXPECT_FALSE(isSparseBackupGroup(4));
  EXPECT_FALSE(isSparseBackupGroup(6));
  EXPECT_FALSE(isSparseBackupGroup(10));
}

TEST(Layout, BackupGroupSelectionByFeature) {
  Superblock sb;
  sb.first_data_block = 0;
  sb.blocks_count = 512 * 30;
  sb.blocks_per_group = 512;

  sb.feature_ro_compat = kRoCompatSparseSuper;
  const auto sparse = backupGroups(sb);
  EXPECT_EQ(sparse, (std::vector<std::uint32_t>{1, 3, 5, 7, 9, 25, 27}));

  sb.feature_ro_compat = 0;
  sb.feature_compat = kCompatSparseSuper2;
  sb.backup_bgs[0] = 1;
  sb.backup_bgs[1] = 29;
  const auto sparse2 = backupGroups(sb);
  EXPECT_EQ(sparse2, (std::vector<std::uint32_t>{1, 29}));

  sb.feature_compat = 0;
  const auto all = backupGroups(sb);
  EXPECT_EQ(all.size(), 29u);  // every group except 0
}

TEST(Inode, SerializeRoundTrip) {
  Inode inode;
  inode.size_bytes = 40960;
  inode.links = 1;
  inode.extents = {{100, 8}, {300, 2}};
  std::uint8_t buf[Inode::kDiskSize];
  inode.serialize(buf);
  const Inode back = Inode::deserialize(buf);
  EXPECT_EQ(back.size_bytes, inode.size_bytes);
  EXPECT_EQ(back.links, 1);
  ASSERT_EQ(back.extents.size(), 2u);
  EXPECT_EQ(back.extents[1].start, 300u);
  EXPECT_EQ(back.extents[1].length, 2u);
}

}  // namespace
}  // namespace fsdep::fsim
