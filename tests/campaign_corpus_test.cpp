// Regression guard: every reproducer committed under corpus/campaign/
// must still replay to its recorded outcome class and state digest.
// A digest drift here means the simulator's post-recovery state changed
// for a configuration the campaign already flagged — exactly the kind
// of silent behaviour shift this corpus exists to catch.
#include <gtest/gtest.h>

#include "tools/campaign.h"

#include <filesystem>

#ifndef FSDEP_CAMPAIGN_CORPUS_DIR
#error "FSDEP_CAMPAIGN_CORPUS_DIR must point at the committed corpus"
#endif

namespace fsdep::tools {
namespace {

TEST(CampaignCorpus, CommittedReprosStillReplay) {
  ASSERT_TRUE(std::filesystem::is_directory(FSDEP_CAMPAIGN_CORPUS_DIR));
  const Result<ReplayReport> replay = replayCampaignCorpus(FSDEP_CAMPAIGN_CORPUS_DIR);
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  const ReplayReport& report = replay.value();
  ASSERT_FALSE(report.cases.empty()) << "committed corpus is empty";
  EXPECT_TRUE(report.allMatch()) << report.summary();
  for (const ReplayCase& c : report.cases) {
    EXPECT_TRUE(c.outcome_match) << c.file << ": " << c.detail;
    EXPECT_TRUE(c.digest_match) << c.file << " digest drifted";
    // The seed corpus holds the paper's headline failure: silent
    // corruption out of the buggy (resize_inode-less) online resize.
    EXPECT_EQ(c.recorded, CrashOutcome::SilentCorruption) << c.file;
    EXPECT_EQ(c.op, "resize-buggy") << c.file;
  }
}

TEST(CampaignCorpus, ReplayRejectsMissingDirectory) {
  EXPECT_FALSE(replayCampaignCorpus("/nonexistent/fsdep-corpus").ok());
}

}  // namespace
}  // namespace fsdep::tools
