// Instrumentation must be invisible to the analysis: the dependencies a
// pipeline run extracts are bit-identical whether tracing is on or off,
// and the trace of a parallel Table 5 run carries the spans and cache
// events the observability layer promises.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "corpus/pipeline.h"
#include "model/serialization.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace fsdep::corpus {
namespace {

/// The global pool defaults to hardware_concurrency threads, which can
/// be 1 (CI containers); size it explicitly so the queue path — the one
/// the queue-wait instrumentation lives on — actually runs.
class ObsPipeline : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::setGlobalJobs(4); }
  void TearDown() override { ThreadPool::setGlobalJobs(0); }
};

std::string depsJson(const Table5Result& result) {
  json::Object root;
  root["unique"] = model::toJson(result.unique_deps);
  json::Array per_scenario;
  for (const ScenarioResult& sr : result.per_scenario) {
    per_scenario.push_back(model::toJson(sr.deps));
  }
  root["per_scenario"] = std::move(per_scenario);
  return json::writePretty(root);
}

TEST_F(ObsPipeline, ExtractionIsIdenticalWithTracingOn) {
  PipelineOptions pipeline;
  pipeline.jobs = 4;

  const std::string off = depsJson(runTable5({}, nullptr, pipeline));

  obs::Trace::start();
  const std::string on = depsJson(runTable5({}, nullptr, pipeline));
  obs::Trace::stop();

  EXPECT_EQ(off, on);
}

TEST_F(ObsPipeline, Table5TraceCarriesAnalyzeSpansAndCacheEvents) {
  PipelineOptions pipeline;
  pipeline.jobs = 4;

  obs::Trace::start();
  const Table5Result result = runTable5({}, nullptr, pipeline);
  const std::vector<obs::TraceEvent> events = obs::Trace::snapshot();
  obs::Trace::stop();
  ASSERT_FALSE(result.per_scenario.empty());

  // One "analyze" span per (scenario x component) pair, tagged with both.
  std::set<std::string> analyzed;
  bool saw_cache_event = false;
  bool saw_queue_wait = false;
  bool saw_parse_or_cached = false;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "analyze" && std::string(e.category) == "pipeline") {
      EXPECT_NE(e.args_json.find("\"scenario\""), std::string::npos);
      EXPECT_NE(e.args_json.find("\"component\""), std::string::npos);
      analyzed.insert(e.args_json);
    }
    if (std::string(e.category) == "cache") saw_cache_event = true;
    if (e.name == "queue-wait") saw_queue_wait = true;
    if (e.name == "parse" || e.name == "cache-hit") saw_parse_or_cached = true;
  }
  std::size_t pairs = 0;
  for (const Scenario& s : scenarios()) pairs += s.selection.size();
  EXPECT_EQ(analyzed.size(), pairs);
  EXPECT_TRUE(saw_cache_event);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_parse_or_cached);
}

}  // namespace
}  // namespace fsdep::corpus
