// tools/confgen: the dependency-aware configuration generator and the
// deterministic matrix sampler the campaign engine draws from.
#include <gtest/gtest.h>

#include "tools/confgen/confgen.h"

#include <set>

#include "fsim/mkfs.h"

namespace fsdep::tools {
namespace {

TEST(ConfigGenerator, SameSeedSameStream) {
  ConfigGenerator a(7);
  ConfigGenerator b(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.nextUint(), b.nextUint());
}

TEST(ConfigGenerator, ZeroSeedIsUsable) {
  ConfigGenerator gen(0);
  // xorshift with state 0 would be stuck at 0 forever.
  EXPECT_NE(gen.nextUint(), 0u);
}

TEST(ConfigGenerator, RandomConfigIsDeterministic) {
  ConfigGenerator a(2024);
  ConfigGenerator b(2024);
  const GeneratedConfig ca = a.randomConfig();
  const GeneratedConfig cb = b.randomConfig();
  EXPECT_EQ(ca.mkfs.block_size, cb.mkfs.block_size);
  EXPECT_EQ(ca.mkfs.inode_ratio, cb.mkfs.inode_ratio);
  EXPECT_EQ(ca.mkfs.bigalloc, cb.mkfs.bigalloc);
  EXPECT_EQ(ca.resize_target, cb.resize_target);
}

TEST(Sampling, KnobDomainsAreStable) {
  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  ASSERT_GE(knobs.size(), 4u);
  for (const SamplingKnob& knob : knobs) {
    EXPECT_FALSE(knob.name.empty());
    EXPECT_GE(knob.values.size(), 2u) << knob.name;
  }
  // The baseline (value 0 everywhere) must be the CrashCk geometry.
  const GeneratedConfig baseline = baselineConfig();
  EXPECT_EQ(baseline.mkfs.block_size, 1024u);
  EXPECT_EQ(baseline.mkfs.size_blocks, 2048u);
  EXPECT_EQ(baseline.mkfs.blocks_per_group, 512u);
}

TEST(Sampling, ApplyKnobLayoutIsMutuallyExclusive) {
  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  std::size_t layout = knobs.size();
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    if (knobs[i].name == "layout") layout = i;
  }
  ASSERT_LT(layout, knobs.size());
  for (std::size_t v = 0; v < knobs[layout].values.size(); ++v) {
    GeneratedConfig config = baselineConfig();
    applyKnob(config, layout, v);
    const int enabled = (config.mkfs.resize_inode ? 1 : 0) +
                        (config.mkfs.sparse_super2 ? 1 : 0) + (config.mkfs.meta_bg ? 1 : 0);
    EXPECT_LE(enabled, 1) << knobs[layout].values[v];
  }
}

TEST(Sampling, EachUsedValueCoversEveryKnobValue) {
  SamplingOptions options;
  options.pairwise = false;
  const std::vector<SampledConfig> matrix = sampleConfigMatrix(options, {});
  ASSERT_FALSE(matrix.empty());
  EXPECT_EQ(matrix.front().origin, "baseline");

  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  for (std::size_t k = 0; k < knobs.size(); ++k) {
    for (std::size_t v = 0; v < knobs[k].values.size(); ++v) {
      bool covered = false;
      for (const SampledConfig& row : matrix) covered |= row.choices[k] == v;
      EXPECT_TRUE(covered) << knobs[k].name << "=" << knobs[k].values[v];
    }
  }
}

TEST(Sampling, PairwiseCoversEveryValuePair) {
  SamplingOptions options;
  const std::vector<SampledConfig> matrix = sampleConfigMatrix(options, {});
  const std::vector<SamplingKnob>& knobs = samplingKnobs();
  for (std::size_t a = 0; a < knobs.size(); ++a) {
    for (std::size_t b = a + 1; b < knobs.size(); ++b) {
      for (std::size_t va = 0; va < knobs[a].values.size(); ++va) {
        for (std::size_t vb = 0; vb < knobs[b].values.size(); ++vb) {
          bool covered = false;
          for (const SampledConfig& row : matrix)
            covered |= row.choices[a] == va && row.choices[b] == vb;
          EXPECT_TRUE(covered) << knobs[a].name << "=" << knobs[a].values[va] << " x "
                               << knobs[b].name << "=" << knobs[b].values[vb];
        }
      }
    }
  }
}

TEST(Sampling, MatrixIsDeterministicAndDeduplicated) {
  const std::vector<SampledConfig> a = sampleConfigMatrix({}, {});
  const std::vector<SampledConfig> b = sampleConfigMatrix({}, {});
  ASSERT_EQ(a.size(), b.size());
  std::set<std::vector<std::size_t>> seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].choices, b[i].choices);
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_EQ(a[i].label(), b[i].label());
    EXPECT_TRUE(seen.insert(a[i].choices).second) << "duplicate row " << a[i].label();
  }
}

TEST(Sampling, MaxConfigsIsAPrefixOfTheFullMatrix) {
  const std::vector<SampledConfig> full = sampleConfigMatrix({}, {});
  SamplingOptions capped;
  capped.max_configs = 5;
  const std::vector<SampledConfig> prefix = sampleConfigMatrix(capped, {});
  ASSERT_EQ(prefix.size(), 5u);
  for (std::size_t i = 0; i < prefix.size(); ++i)
    EXPECT_EQ(prefix[i].choices, full[i].choices);
}

TEST(Sampling, RepairResolvesStructuralConflicts) {
  for (const SampledConfig& row : sampleConfigMatrix({}, {})) {
    const fsim::MkfsOptions& mkfs = row.config.mkfs;
    EXPECT_FALSE(mkfs.sparse_super2 && mkfs.resize_inode) << row.label();
    EXPECT_FALSE(mkfs.bigalloc && !mkfs.extents) << row.label();
    if (mkfs.bigalloc) {
      EXPECT_GE(mkfs.cluster_size, mkfs.block_size) << row.label();
    }
  }
}

TEST(Sampling, BaselineRowPassesMkfsValidation) {
  const std::vector<SampledConfig> matrix = sampleConfigMatrix({}, {});
  ASSERT_FALSE(matrix.empty());
  const auto violations =
      fsim::MkfsTool::validate(matrix.front().config.mkfs, 8192ull * 1024ull);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

TEST(Repair, AppliesStructuralRulesWithoutDependencies) {
  GeneratedConfig config = baselineConfig();
  config.mount.dax = true;           // needs 4 KiB blocks; baseline is 1 KiB
  config.mount.noload = true;        // norecovery requires read-only
  config.mkfs.blocks_per_group = 128;  // below the format minimum
  repairConfig(config, {});
  EXPECT_FALSE(config.mount.dax);
  EXPECT_TRUE(config.mount.read_only);
  EXPECT_GE(config.mkfs.blocks_per_group, 256u);
}

}  // namespace
}  // namespace fsdep::tools
