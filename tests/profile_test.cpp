// The span-aggregation engine behind `fsdep profile`: containment-based
// nesting reconstruction, group splitting, per-node statistics, and the
// three renderers (text / JSON tree / collapsed stacks).
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/json.h"
#include "obs/trace.h"

namespace fsdep::obs {
namespace {

TraceEvent span(const char* category, std::string name, std::uint64_t ts_us,
                std::uint64_t dur_us, std::uint32_t tid = 1, std::string group = {}) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::Complete;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.group = std::move(group);
  return e;
}

const ProfileNode* findChild(const Profile& p, const ProfileNode& parent,
                             const std::string& name, const std::string& group = {}) {
  for (const std::size_t i : parent.children) {
    if (p.nodes[i].name == name && p.nodes[i].group == group) return &p.nodes[i];
  }
  return nullptr;
}

TEST(Profile, NestsByTimeContainment) {
  std::vector<TraceEvent> events;
  events.push_back(span("cli", "table5", 0, 100));
  events.push_back(span("pipeline", "analyze", 10, 20));
  events.push_back(span("pipeline", "extract", 40, 30));
  const Profile p = buildProfile(events, /*wall_ms=*/0.2, "table5");

  ASSERT_EQ(p.nodes[0].children.size(), 1u);
  const ProfileNode* root_cmd = findChild(p, p.nodes[0], "table5");
  ASSERT_NE(root_cmd, nullptr);
  EXPECT_EQ(root_cmd->total_us, 100u);
  EXPECT_EQ(root_cmd->self_us, 50u);  // 100 - (20 + 30)
  ASSERT_EQ(root_cmd->children.size(), 2u);
  const ProfileNode* analyze = findChild(p, *root_cmd, "analyze");
  ASSERT_NE(analyze, nullptr);
  EXPECT_EQ(analyze->total_us, 20u);
  EXPECT_EQ(analyze->self_us, 20u);
  EXPECT_EQ(p.attributed_us, 100u);
  EXPECT_EQ(p.event_count, 3u);
  EXPECT_NEAR(p.coverage(), 0.5, 1e-9);
}

TEST(Profile, EndOrderedBuffersStillNestParentFirst) {
  // RAII spans land in END order: the child precedes its parent in the
  // buffer even at identical timestamps and durations.
  std::vector<TraceEvent> events;
  events.push_back(span("t", "child", 5, 0));
  events.push_back(span("t", "parent", 5, 0));
  const Profile p = buildProfile(events, 1.0, "x");
  const ProfileNode* parent = findChild(p, p.nodes[0], "parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(findChild(p, *parent, "child"), nullptr);
}

TEST(Profile, GroupSplitsSameNameSpans) {
  std::vector<TraceEvent> events;
  events.push_back(span("pipeline", "analyze", 0, 10, 1, "s1/mke2fs"));
  events.push_back(span("pipeline", "analyze", 20, 30, 1, "s1/mount"));
  events.push_back(span("pipeline", "analyze", 60, 5, 1, "s1/mke2fs"));
  const Profile p = buildProfile(events, 1.0, "x");
  ASSERT_EQ(p.nodes[0].children.size(), 2u);
  const ProfileNode* mke2fs = findChild(p, p.nodes[0], "analyze", "s1/mke2fs");
  ASSERT_NE(mke2fs, nullptr);
  EXPECT_EQ(mke2fs->count, 2u);
  EXPECT_EQ(mke2fs->total_us, 15u);
  EXPECT_EQ(mke2fs->min_us, 5u);
  EXPECT_EQ(mke2fs->max_us, 10u);
  const ProfileNode* mount = findChild(p, p.nodes[0], "analyze", "s1/mount");
  ASSERT_NE(mount, nullptr);
  EXPECT_EQ(mount->count, 1u);
}

TEST(Profile, PercentilesComeFromExactSamples) {
  std::vector<TraceEvent> events;
  for (std::uint64_t i = 0; i < 100; ++i) {
    events.push_back(span("t", "work", i * 1000, i + 1));
  }
  const Profile p = buildProfile(events, 1000.0, "x");
  const ProfileNode* work = findChild(p, p.nodes[0], "work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->count, 100u);
  EXPECT_EQ(work->min_us, 1u);
  EXPECT_EQ(work->max_us, 100u);
  EXPECT_EQ(work->p50_us, 51u);  // index floor(0.50 * 100) of sorted 1..100
  EXPECT_EQ(work->p95_us, 96u);
}

TEST(Profile, ThreadsAttributeIndependently) {
  std::vector<TraceEvent> events;
  events.push_back(span("t", "outer", 0, 100, 1));
  // Same window on another thread: NOT a child of tid 1's outer span.
  events.push_back(span("t", "task", 10, 50, 2));
  const Profile p = buildProfile(events, 0.2, "x");
  EXPECT_EQ(p.nodes[0].children.size(), 2u);
  EXPECT_EQ(p.attributed_us, 150u);
}

TEST(Profile, InstantEventsCarryNoTime) {
  std::vector<TraceEvent> events;
  events.push_back(span("t", "outer", 0, 100));
  TraceEvent instant;
  instant.phase = TraceEvent::Phase::Instant;
  instant.category = "cache";
  instant.name = "cache-hit";
  instant.ts_us = 10;
  instant.tid = 1;
  events.push_back(instant);
  const Profile p = buildProfile(events, 0.2, "x");
  EXPECT_EQ(p.event_count, 1u);
  EXPECT_EQ(p.attributed_us, 100u);
}

TEST(Profile, JsonRendersTheFullTree) {
  std::vector<TraceEvent> events;
  events.push_back(span("cli", "table5", 0, 100));
  events.push_back(span("pipeline", "analyze", 10, 20, 1, "s1/mke2fs"));
  const Profile p = buildProfile(events, 0.2, "table5");
  const std::string text = renderProfileJson(p);

  Result<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  const json::Object& doc = parsed.value().asObject();
  EXPECT_EQ(doc.find("schema_version")->asInt(), 1);
  EXPECT_EQ(doc.find("command")->asString(), "table5");
  EXPECT_EQ(doc.find("event_count")->asInt(), 2);
  EXPECT_NEAR(doc.find("coverage")->asDouble(), 0.5, 1e-9);
  const json::Object& root = doc.find("root")->asObject();
  EXPECT_EQ(root.find("name")->asString(), "root");
  const json::Array& children = root.find("children")->asArray();
  ASSERT_EQ(children.size(), 1u);
  const json::Object& cmd = children[0].asObject();
  EXPECT_EQ(cmd.find("name")->asString(), "table5");
  EXPECT_EQ(cmd.find("total_us")->asInt(), 100);
  EXPECT_EQ(cmd.find("self_us")->asInt(), 80);
  const json::Object& analyze = cmd.find("children")->asArray()[0].asObject();
  EXPECT_EQ(analyze.find("group")->asString(), "s1/mke2fs");
}

TEST(Profile, FoldedStacksAreFlamegraphReady) {
  std::vector<TraceEvent> events;
  events.push_back(span("cli", "table5", 0, 100));
  events.push_back(span("pipeline", "analyze", 10, 20, 1, "s1/mke2fs"));
  events.push_back(span("taint", "bad name;here", 12, 5));
  const Profile p = buildProfile(events, 0.2, "table5");
  const std::string folded = renderProfileFolded(p);

  EXPECT_NE(folded.find("table5 80\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("table5;analyze:s1/mke2fs 15\n"), std::string::npos) << folded;
  // Separator characters inside frame names are sanitized away.
  EXPECT_NE(folded.find("table5;analyze:s1/mke2fs;bad_name_here 5\n"), std::string::npos)
      << folded;
  // Every line is "frame(;frame)* count" with no empty frames.
  std::size_t start = 0;
  int lines = 0;
  while (start < folded.size()) {
    const std::size_t end = folded.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = folded.substr(start, end - start);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
    const std::string stack = line.substr(0, sp);
    EXPECT_FALSE(stack.empty()) << line;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    EXPECT_NE(stack.front(), ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_GE(lines, 3);
}

TEST(Profile, TextTableSortsBySelfTime) {
  std::vector<TraceEvent> events;
  events.push_back(span("cli", "table5", 0, 100));
  events.push_back(span("pipeline", "analyze", 10, 60, 1, "s1/mke2fs"));
  const Profile p = buildProfile(events, 0.2, "table5");
  const std::string text = renderProfileText(p);
  EXPECT_NE(text.find("fsdep profile — table5"), std::string::npos) << text;
  // analyze (60us self) must be listed before table5 (40us self).
  const std::size_t analyze_pos = text.find("pipeline/analyze");
  const std::size_t cmd_pos = text.find("cli/table5");
  ASSERT_NE(analyze_pos, std::string::npos);
  ASSERT_NE(cmd_pos, std::string::npos);
  EXPECT_LT(analyze_pos, cmd_pos);
  EXPECT_NE(text.find("[s1/mke2fs]"), std::string::npos) << text;
}

TEST(Profile, FormatParsing) {
  ProfileFormat format = ProfileFormat::Text;
  EXPECT_TRUE(parseProfileFormat("json", format));
  EXPECT_EQ(format, ProfileFormat::Json);
  EXPECT_TRUE(parseProfileFormat("folded", format));
  EXPECT_EQ(format, ProfileFormat::Folded);
  EXPECT_TRUE(parseProfileFormat("text", format));
  EXPECT_EQ(format, ProfileFormat::Text);
  EXPECT_FALSE(parseProfileFormat("svg", format));
}

TEST(Profile, RealSpansCarryTheirArgGroups) {
  Trace::start();
  {
    Span outer("pipeline", "scenario");
    outer.arg("scenario", "s1");
    {
      Span inner("pipeline", "analyze");
      inner.arg("scenario", "s1");
      inner.arg("component", "mke2fs");
      inner.arg("bytes", std::uint64_t{42});  // numeric args never group
    }
  }
  const std::vector<TraceEvent> events = Trace::stopEvents();
  const Profile p = buildProfile(events, 1.0, "test");
  const ProfileNode* scenario = findChild(p, p.nodes[0], "scenario", "s1");
  ASSERT_NE(scenario, nullptr);
  ASSERT_NE(findChild(p, *scenario, "analyze", "s1/mke2fs"), nullptr);
}

}  // namespace
}  // namespace fsdep::obs
