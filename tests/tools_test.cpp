#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/pipeline.h"
#include "tools/conbugck.h"
#include "tools/condocck.h"
#include "tools/conhandleck.h"
#include "tools/depgraph.h"

namespace fsdep::tools {
namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

// --- ConDocCk unit behaviour. ---

Dependency dep(DepKind kind, ConstraintOp op, const std::string& param,
               const std::string& other = "") {
  Dependency d;
  d.kind = kind;
  d.op = op;
  d.param = param;
  d.other_param = other;
  d.id = "dep-" + param;
  return d;
}

corpus::ManualEntry claim(const Dependency& d, const std::string& text) {
  corpus::ManualEntry entry;
  entry.claim = d;
  entry.text = text;
  return entry;
}

TEST(ConDocCk, DetectsUndocumented) {
  const Dependency d = dep(DepKind::CpdControl, ConstraintOp::Excludes, "a.x", "a.y");
  const DocCheckReport report = checkDocumentation({d}, {});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DocIssueKind::Undocumented);
}

TEST(ConDocCk, AccurateClaimIsNoIssue) {
  const Dependency d = dep(DepKind::CpdControl, ConstraintOp::Excludes, "a.x", "a.y");
  const DocCheckReport report = checkDocumentation({d}, {claim(d, "x excludes y")});
  EXPECT_TRUE(report.issues.empty());
}

TEST(ConDocCk, WrongBoundsAreInaccurate) {
  Dependency code = dep(DepKind::SdValueRange, ConstraintOp::InRange, "a.v");
  code.low = 0;
  code.high = 50;
  Dependency documented = code;
  documented.high = 100;
  const DocCheckReport report = checkDocumentation({code}, {claim(documented, "0 to 100")});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DocIssueKind::Inaccurate);
}

TEST(ConDocCk, WrongRequiresOrientationIsInaccurate) {
  const Dependency code = dep(DepKind::CpdControl, ConstraintOp::Requires, "a.x", "a.y");
  Dependency documented = dep(DepKind::CpdControl, ConstraintOp::Requires, "a.y", "a.x");
  const DocCheckReport report =
      checkDocumentation({code}, {claim(documented, "y requires x")});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DocIssueKind::Inaccurate);
}

TEST(ConDocCk, StaleClaimIsReported) {
  const Dependency ghost = dep(DepKind::CpdControl, ConstraintOp::Excludes, "a.old", "a.gone");
  const DocCheckReport report = checkDocumentation({}, {claim(ghost, "old excludes gone")});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, DocIssueKind::Stale);
}

// --- The paper's §4.3 numbers over the corpus. ---

TEST(ConDocCk, CorpusFindsTwelveIssues) {
  const DocCheckReport report = runCorpusDocCheck();
  EXPECT_EQ(report.issues.size(), 12u) << report.summary();
  EXPECT_EQ(report.checked_dependencies, 59u) << "59 true dependencies feed the check";
  EXPECT_EQ(report.countOf(DocIssueKind::Undocumented), 9);
  EXPECT_EQ(report.countOf(DocIssueKind::Inaccurate), 2);
  EXPECT_EQ(report.countOf(DocIssueKind::Stale), 1);
}

TEST(ConDocCk, CorpusFindsThePapersExample) {
  // "there is a cross-parameter dependency in mke2fs specifying that
  //  meta_bg and resize_inode can not be used together, which is missing
  //  from the manual" (§4.3).
  const DocCheckReport report = runCorpusDocCheck();
  bool found = false;
  for (const DocIssue& issue : report.issues) {
    if (issue.kind == DocIssueKind::Undocumented &&
        issue.code_dep.param == "mke2fs.meta_bg" &&
        issue.code_dep.other_param == "mke2fs.resize_inode") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- ConHandleCk. ---

class HandleCheckFixture : public ::testing::Test {
 protected:
  static const HandleCheckReport& report() {
    static const HandleCheckReport kReport = runCorpusHandleCheck();
    return kReport;
  }
};

TEST_F(HandleCheckFixture, ExactlyOneCorruption) {
  EXPECT_EQ(report().countOf(HandleOutcome::Corruption), 1) << report().summary();
}

TEST_F(HandleCheckFixture, TheCorruptionIsFigure1) {
  for (const HandleCase& c : report().cases) {
    if (c.outcome == HandleOutcome::Corruption) {
      EXPECT_NE(c.description.find("sparse_super2"), std::string::npos) << c.description;
    }
  }
}

TEST_F(HandleCheckFixture, MostViolationsAreRejectedGracefully) {
  EXPECT_GT(report().countOf(HandleOutcome::RejectedGracefully), 30);
}

TEST_F(HandleCheckFixture, CoversEveryDependency) {
  EXPECT_EQ(report().cases.size(), 64u);
}

TEST_F(HandleCheckFixture, SilentAcceptsAreKnownGaps) {
  // The simulator's mount deliberately does not validate two persistent
  // fields the kernel corpus checks — ConHandleCk must surface exactly
  // those as silent accepts.
  std::set<std::string> silent;
  for (const HandleCase& c : report().cases) {
    if (c.outcome == HandleOutcome::SilentAccept) silent.insert(c.description);
  }
  EXPECT_EQ(silent.size(), 2u) << report().summary();
}

// --- ConBugCk. ---

TEST(ConBugCk, GeneratorIsDeterministic) {
  ConfigGenerator a(7);
  ConfigGenerator b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextUint(), b.nextUint());
}

TEST(ConBugCk, RepairSatisfiesDependencies) {
  const std::vector<Dependency> deps = corpus::runTable5().unique_deps;
  ConfigGenerator gen(123);
  for (int i = 0; i < 50; ++i) {
    GeneratedConfig config = gen.randomConfig();
    repairConfig(config, deps);
    EXPECT_TRUE(fsim::MkfsTool::validate(config.mkfs, 1ull << 30).empty())
        << "repaired mkfs config " << i << " must satisfy all dependencies";
    const fsim::Superblock fake;  // option checks that need no real sb
    (void)fake;
  }
}

TEST(ConBugCk, DependencyAwareBeatsNaive) {
  const std::vector<Dependency> deps = corpus::runTable5().unique_deps;
  const CampaignResult naive = runCampaign(40, false, deps, 99);
  const CampaignResult aware = runCampaign(40, true, deps, 99);
  EXPECT_GT(aware.mkfs_ok, naive.mkfs_ok);
  EXPECT_GT(aware.pipeline_complete, naive.pipeline_complete);
  EXPECT_GT(aware.coverage_points.size(), naive.coverage_points.size());
}

TEST(ConBugCk, AwareCampaignReachesDeepPoints) {
  const std::vector<Dependency> deps = corpus::runTable5().unique_deps;
  const CampaignResult aware = runCampaign(60, true, deps, 7);
  EXPECT_TRUE(aware.coverage_points.contains("mkfs.done"));
  EXPECT_TRUE(aware.coverage_points.contains("mount.ok"));
  EXPECT_TRUE(aware.coverage_points.contains("umount.ok"));
  EXPECT_TRUE(aware.coverage_points.contains("fsck.full_check"));
  EXPECT_GT(aware.coverage_points.size(), 20u);
}

TEST(ConBugCk, ComparisonReportMentionsBothColumns) {
  CampaignResult naive;
  naive.runs = 10;
  CampaignResult aware;
  aware.runs = 10;
  aware.mkfs_ok = 9;
  const std::string report = formatCampaignComparison(naive, aware);
  EXPECT_NE(report.find("naive"), std::string::npos);
  EXPECT_NE(report.find("dep-aware"), std::string::npos);
}

// --- Post-hoc tune probes. ---

TEST(TuneProbes, ViolationsRejectedAndLegalChangesConsistent) {
  const HandleCheckReport report = runTuneProbes();
  ASSERT_EQ(report.cases.size(), 6u);
  EXPECT_EQ(report.countOf(HandleOutcome::Corruption), 0) << report.summary();
  EXPECT_EQ(report.countOf(HandleOutcome::RejectedGracefully), 4) << report.summary();
  EXPECT_EQ(report.countOf(HandleOutcome::BehavedConsistently), 2) << report.summary();
}

TEST(TuneProbes, QuotaJournalViolationIsNamed) {
  const HandleCheckReport report = runTuneProbes();
  bool found = false;
  for (const HandleCase& c : report.cases) {
    if (c.dependency_id == "tune-quota-journal") {
      found = true;
      EXPECT_EQ(c.outcome, HandleOutcome::RejectedGracefully);
      EXPECT_NE(c.detail.find("quota"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

// --- Dependency graph rendering. ---

TEST(FaultMode, BuggyResizeIsTheOnlyCorruption) {
  const HandleCheckReport report = runHandleCheckUnderFaults(42);
  ASSERT_FALSE(report.cases.empty());
  for (const HandleCase& c : report.cases) {
    if (c.dependency_id == "fault-resize-sparse2-buggy") {
      EXPECT_EQ(c.outcome, HandleOutcome::Corruption) << c.detail;
    } else {
      EXPECT_EQ(c.outcome, HandleOutcome::BehavedConsistently)
          << c.dependency_id << ": " << c.detail;
    }
  }
}

TEST(FaultMode, CoversTheWholeToolchain) {
  const HandleCheckReport report = runHandleCheckUnderFaults(42);
  std::vector<std::string> ids;
  for (const HandleCase& c : report.cases) ids.push_back(c.dependency_id);
  for (const char* expected :
       {"fault-mkfs", "fault-mount-commit", "fault-resize-sparse2-buggy",
        "fault-resize-sparse2-fixed", "fault-defrag", "fault-tune"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end()) << expected;
  }
}

TEST(FaultMode, DetailCarriesTheHistogram) {
  const HandleCheckReport report = runHandleCheckUnderFaults(42);
  for (const HandleCase& c : report.cases) {
    EXPECT_NE(c.detail.find("crash point(s)"), std::string::npos) << c.dependency_id;
    EXPECT_NE(c.detail.find("recovered="), std::string::npos) << c.dependency_id;
  }
}

TEST(FaultMode, DeterministicInTheSeed) {
  const HandleCheckReport a = runHandleCheckUnderFaults(99);
  const HandleCheckReport b = runHandleCheckUnderFaults(99);
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].outcome, b.cases[i].outcome) << a.cases[i].dependency_id;
    EXPECT_EQ(a.cases[i].detail, b.cases[i].detail) << a.cases[i].dependency_id;
  }
}

TEST(DepGraph, RendersEdgesWithLevelsAndClusters) {
  const Dependency cpd = dep(DepKind::CpdControl, ConstraintOp::Excludes, "mke2fs.a", "mke2fs.b");
  Dependency ccd = dep(DepKind::CcdBehavioral, ConstraintOp::Influences, "resize2fs.x", "mke2fs.a");
  ccd.bridge_field = "sb.f";
  const std::string dot = renderDependencyGraphDot({cpd, ccd});
  EXPECT_NE(dot.find("digraph fsdep"), std::string::npos);
  EXPECT_NE(dot.find("mke2fs_a -> mke2fs_b"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);
  EXPECT_NE(dot.find("resize2fs_x -> mke2fs_a"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("via sb.f"), std::string::npos);
  EXPECT_NE(dot.find("cluster_"), std::string::npos);
  EXPECT_NE(dot.find("label=\"mke2fs\""), std::string::npos);
}

TEST(DepGraph, SelfDepsOnlyWhenRequested) {
  Dependency sd = dep(DepKind::SdValueRange, ConstraintOp::InRange, "mke2fs.blocksize");
  const std::string without = renderDependencyGraphDot({sd});
  EXPECT_EQ(without.find("mke2fs_blocksize"), std::string::npos);
  GraphOptions options;
  options.include_self_deps = true;
  const std::string with = renderDependencyGraphDot({sd}, options);
  EXPECT_NE(with.find("mke2fs_blocksize"), std::string::npos);
}

TEST(DepGraph, CorpusGraphIsWellFormed) {
  const std::string dot = renderDependencyGraphDot(corpus::runTable5().unique_deps);
  // Balanced braces and a red (cross-component) edge present.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), std::count(dot.begin(), dot.end(), '}'));
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace fsdep::tools
