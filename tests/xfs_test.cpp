// The §6 generalization: the unchanged pipeline must extract multi-level
// dependencies from the XFS mini-ecosystem.
#include <gtest/gtest.h>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

class XfsFixture : public ::testing::Test {
 protected:
  static const std::vector<Dependency>& deps() {
    static const std::vector<Dependency> kDeps = [] {
      const extract::ExtractOptions options = xfsExtractOptions();
      return runScenario(xfsScenario(), taint::AnalysisOptions{}, &options);
    }();
    return kDeps;
  }

  static const Dependency* find(DepKind kind, ConstraintOp op, const std::string& param,
                                const std::string& other = "") {
    Dependency probe;
    probe.kind = kind;
    probe.op = op;
    probe.param = param;
    probe.other_param = other;
    for (const Dependency& d : deps()) {
      if (d.dedupKey() == probe.dedupKey()) return &d;
    }
    return nullptr;
  }
};

TEST_F(XfsFixture, ComponentsParse) {
  for (const std::string& name : xfsComponentNames()) {
    EXPECT_NO_THROW(AnalyzedComponent(name, taint::AnalysisOptions{})) << name;
  }
}

TEST_F(XfsFixture, ExtractsAllThreeLevels) {
  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  for (const Dependency& d : deps()) {
    switch (d.level()) {
      case model::DepLevel::SelfDependency: ++sd; break;
      case model::DepLevel::CrossParameter: ++cpd; break;
      case model::DepLevel::CrossComponent: ++ccd; break;
    }
  }
  EXPECT_GE(sd, 8);
  EXPECT_GE(cpd, 4);
  EXPECT_GE(ccd, 2);
}

TEST_F(XfsFixture, V5FeatureMatrix) {
  // reflink / rmapbt / bigtime all require the crc (v5) format.
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Requires, "mkfs_xfs.reflink",
                 "mkfs_xfs.crc"),
            nullptr);
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Requires, "mkfs_xfs.rmapbt",
                 "mkfs_xfs.crc"),
            nullptr);
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Requires, "mkfs_xfs.bigtime",
                 "mkfs_xfs.crc"),
            nullptr);
}

TEST_F(XfsFixture, SelfDependencyRanges) {
  const Dependency* blocksize = find(DepKind::SdValueRange, ConstraintOp::InRange,
                                     "mkfs_xfs.blocksize");
  ASSERT_NE(blocksize, nullptr);
  EXPECT_EQ(blocksize->low, 512);
  EXPECT_EQ(blocksize->high, 65536);

  const Dependency* logbufs = find(DepKind::SdValueRange, ConstraintOp::InRange,
                                   "xfs_mount.logbufs");
  ASSERT_NE(logbufs, nullptr);
  EXPECT_EQ(logbufs->low, 2);
  EXPECT_EQ(logbufs->high, 8);
}

TEST_F(XfsFixture, NorecoveryRequiresReadOnly) {
  EXPECT_NE(find(DepKind::CpdControl, ConstraintOp::Requires, "xfs_mount.norecovery",
                 "xfs_mount.ro"),
            nullptr);
}

TEST_F(XfsFixture, GrowfsNoShrinkIsCrossComponent) {
  // xfs_growfs refuses targets below sb_dblocks, which mkfs.xfs wrote
  // from its size argument: a CCD through the superblock bridge. (The
  // bridge field reported may be sb_dblocks or sb_agblocks: growfs also
  // writes sb_dblocks, so the kernel's dblocks>=agblocks invariant
  // relates the same parameter pair and deduplicates with this one.)
  const Dependency* no_shrink = find(DepKind::CcdValue, ConstraintOp::Ge, "xfs_growfs.size",
                                     "mkfs_xfs.size");
  ASSERT_NE(no_shrink, nullptr);
  EXPECT_TRUE(no_shrink->bridge_field.starts_with("xfs_sb.")) << no_shrink->bridge_field;
}

TEST_F(XfsFixture, GrowfsSizeInterpretedInMkfsBlocks) {
  const Dependency* conversion = find(DepKind::CcdBehavioral, ConstraintOp::Influences,
                                      "xfs_growfs.size", "mkfs_xfs.blocksize");
  ASSERT_NE(conversion, nullptr);
  EXPECT_EQ(conversion->bridge_field, "xfs_sb.sb_blocksize");
}

TEST_F(XfsFixture, GrowBehaviourGatedByCreationSize) {
  EXPECT_NE(find(DepKind::CcdBehavioral, ConstraintOp::Influences, "xfs_growfs.size",
                 "mkfs_xfs.size"),
            nullptr);
}

TEST_F(XfsFixture, RmapbtGatesGrowfsBehaviour) {
  bool found = false;
  for (const Dependency& d : deps()) {
    if (d.kind == DepKind::CcdBehavioral && d.other_param == "mkfs_xfs.rmapbt") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(XfsFixture, NoCrossTalkWithExt4Corpus) {
  for (const Dependency& d : deps()) {
    EXPECT_EQ(d.param.find("mke2fs"), std::string::npos) << d.summary();
    EXPECT_EQ(d.other_param.find("ext4_super_block"), std::string::npos) << d.summary();
  }
}

}  // namespace
}  // namespace fsdep::corpus
