// Deterministic fuzz / property tests: the frontend must never crash on
// malformed input, the JSON parser must be total, the taint analysis must
// track synthesized dataflow chains, and the simulator must stay
// consistent under arbitrary valid operation sequences.
#include <gtest/gtest.h>

#include <string>

#include "ast/parser.h"
#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"
#include "json/json.h"
#include "lex/preprocessor.h"
#include "sema/sema.h"
#include "taint/analyzer.h"
#include "fsim/tune.h"
#include "tools/crashck.h"

namespace fsdep {
namespace {

/// xorshift64* — deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9E3779B9u : seed) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }
  std::uint32_t below(std::uint32_t bound) {
    return bound == 0 ? 0 : static_cast<std::uint32_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------
// JSON fuzz
// ---------------------------------------------------------------------

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::uint32_t length = rng.below(64);
    for (std::uint32_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.below(127) + 1);
    }
    (void)json::parse(garbage);  // must not crash or hang; result may be error
  }
  SUCCEED();
}

TEST_P(JsonFuzz, RandomStructuredDocumentsRoundTrip) {
  Rng rng(GetParam());
  // Build a random value tree, write it, reparse, compare.
  std::function<json::Value(int)> build = [&](int depth) -> json::Value {
    const int kind = depth > 3 ? static_cast<int>(rng.below(4)) : static_cast<int>(rng.below(6));
    switch (kind) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.below(2) == 0);
      case 2: return json::Value(static_cast<std::int64_t>(rng.next() % 1000000) - 500000);
      case 3: {
        std::string s;
        const std::uint32_t len = rng.below(12);
        for (std::uint32_t i = 0; i < len; ++i) {
          s += static_cast<char>('a' + rng.below(26));
        }
        return json::Value(std::move(s));
      }
      case 4: {
        json::Array arr;
        const std::uint32_t n = rng.below(4);
        for (std::uint32_t i = 0; i < n; ++i) arr.push_back(build(depth + 1));
        return json::Value(std::move(arr));
      }
      default: {
        json::Object obj;
        const std::uint32_t n = rng.below(4);
        for (std::uint32_t i = 0; i < n; ++i) {
          obj["k" + std::to_string(i)] = build(depth + 1);
        }
        return json::Value(std::move(obj));
      }
    }
  };
  for (int round = 0; round < 50; ++round) {
    const json::Value original = build(0);
    const auto compact = json::parse(json::writeCompact(original));
    ASSERT_TRUE(compact.ok());
    EXPECT_TRUE(original == compact.value());
    const auto pretty = json::parse(json::writePretty(original));
    ASSERT_TRUE(pretty.ok());
    EXPECT_TRUE(original == pretty.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------
// Frontend fuzz
// ---------------------------------------------------------------------

class FrontendFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontendFuzz, TokenSoupNeverCrashesTheParser) {
  Rng rng(GetParam());
  const char* vocabulary[] = {
      "int",   "long", "struct", "enum",   "if",     "else",  "while", "return", "{",
      "}",     "(",    ")",      "[",      "]",      ";",     ",",     "=",      "==",
      "&&",    "||",   "<",      ">",      "+",      "-",     "*",     "/",      "&",
      "|",     "!",    "->",     ".",      "x",      "y",     "sb",    "blocks", "42",
      "0x1F",  "'c'",  "\"s\"",  "typedef", "switch", "case",  "break", "default", "?",
      ":",     "sizeof", "void", "unsigned", "char",
  };
  for (int round = 0; round < 60; ++round) {
    std::string soup;
    const std::uint32_t tokens = rng.below(80) + 1;
    for (std::uint32_t i = 0; i < tokens; ++i) {
      soup += vocabulary[rng.below(std::size(vocabulary))];
      soup += ' ';
    }
    SourceManager sm;
    DiagnosticEngine diags;
    const FileId file = sm.addBuffer("soup.c", soup);
    lex::Lexer lexer(sm, file, diags);
    ast::Parser parser(lexer.lexAll(), diags);
    const auto tu = parser.parseTranslationUnit("soup.c");
    ASSERT_NE(tu, nullptr);
    // Sema must digest whatever survived parsing, too.
    sema::Sema sema(*tu, diags);
    (void)sema.run();
  }
  SUCCEED();
}

TEST_P(FrontendFuzz, RandomBytesNeverCrashTheLexer) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::string bytes;
    const std::uint32_t length = rng.below(200);
    for (std::uint32_t i = 0; i < length; ++i) {
      bytes += static_cast<char>(rng.below(255) + 1);
    }
    SourceManager sm;
    DiagnosticEngine diags;
    const FileId file = sm.addBuffer("bytes.c", bytes);
    lex::Lexer lexer(sm, file, diags);
    (void)lexer.lexAll();
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzz, ::testing::Values(3u, 17u, 256u, 4096u));

// ---------------------------------------------------------------------
// Taint property: synthesized dataflow chains
// ---------------------------------------------------------------------

class TaintChainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaintChainProperty, ChainsPropagateAndBystandersStayClean) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int chain_length = 2 + static_cast<int>(rng.below(8));
    // Build: seed v0; v1 = v0 op k; ... vn = v(n-1) op k; plus a clean
    // bystander chain c0..cn.
    std::string body = "  long v0 = 0;\n  long c0 = 1;\n";
    const char* ops[] = {"+", "*", "-", "|", "&", "^", ">>", "<<"};
    for (int i = 1; i <= chain_length; ++i) {
      body += "  long v" + std::to_string(i) + " = v" + std::to_string(i - 1) + " " +
              ops[rng.below(std::size(ops))] + " " + std::to_string(1 + rng.below(7)) + ";\n";
      body += "  long c" + std::to_string(i) + " = c" + std::to_string(i - 1) + " + 1;\n";
    }
    const std::string program = "void f(void) {\n" + body + "}\n";

    SourceManager sm;
    DiagnosticEngine diags;
    const FileId file = sm.addBuffer("chain.c", program);
    lex::Lexer lexer(sm, file, diags);
    ast::Parser parser(lexer.lexAll(), diags);
    auto tu = parser.parseTranslationUnit("chain.c");
    ASSERT_FALSE(diags.hasErrors()) << program;
    sema::Sema sema(*tu, diags);
    sema.run();
    taint::Analyzer analyzer(*tu, sema);
    analyzer.addSeed({"f", "v0", "prop.seed"});
    analyzer.run();

    const taint::FunctionTaint* ft = analyzer.resultFor("f");
    ASSERT_NE(ft, nullptr);
    bool tainted_last = false;
    bool clean_last = true;
    const std::string last_v = "v" + std::to_string(chain_length);
    const std::string last_c = "c" + std::to_string(chain_length);
    for (const auto& [var, labels] : ft->exit_state.vars) {
      if (var->name == last_v && !labels.empty()) tainted_last = true;
      if (var->name == last_c && !labels.empty()) clean_last = false;
    }
    EXPECT_TRUE(tainted_last) << program;
    EXPECT_TRUE(clean_last) << program;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintChainProperty, ::testing::Values(11u, 222u, 3333u));

// ---------------------------------------------------------------------
// Simulator property: arbitrary valid operation sequences stay consistent
// ---------------------------------------------------------------------

class FsimSequenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FsimSequenceProperty, RandomOperationSequencesKeepFsckClean) {
  Rng rng(GetParam());
  fsim::BlockDevice device(16384, 1024);
  fsim::MkfsOptions options;
  options.block_size = 1024;
  options.size_blocks = 4096;
  options.blocks_per_group = 1024;
  options.inode_ratio = 8192;
  ASSERT_TRUE(fsim::MkfsTool::format(device, options).ok());

  std::vector<std::uint32_t> live_inodes;
  for (int step = 0; step < 40; ++step) {
    const std::uint32_t op = rng.below(6);
    if (op <= 2) {
      // Mount and do file work.
      auto mounted = fsim::MountTool::mount(device, fsim::MountOptions{});
      ASSERT_TRUE(mounted.ok()) << mounted.error().message;
      fsim::MountedFs fs = std::move(mounted).take();
      if (op == 0 || live_inodes.empty()) {
        const auto ino = fs.createFile(1024 + rng.below(8) * 1024, rng.below(3));
        if (ino.ok()) live_inodes.push_back(ino.value());
      } else if (op == 1) {
        const std::uint32_t victim = rng.below(static_cast<std::uint32_t>(live_inodes.size()));
        (void)fs.removeFile(live_inodes[victim]);
        live_inodes.erase(live_inodes.begin() + victim);
      } else {
        (void)fsim::DefragTool::run(fs, device, fsim::DefragOptions{});
      }
      fs.unmount();
    } else if (op == 3) {
      // Grow by a random amount.
      fsim::FsImage image(device);
      const std::uint32_t current = image.loadSuperblock().blocks_count;
      fsim::ResizeOptions ro;
      ro.new_size_blocks = current + 512 + rng.below(4) * 512;
      ro.fix_sparse_super2_accounting = true;
      if (ro.new_size_blocks <= 14336) (void)fsim::ResizeTool::resize(device, ro);
    } else if (op == 4) {
      // Shrink toward (but not below) the allocation.
      fsim::FsImage image(device);
      const fsim::Superblock sb = image.loadSuperblock();
      const std::uint32_t in_use = sb.blocks_count - sb.free_blocks_count;
      if (sb.blocks_count > in_use + 1024) {
        fsim::ResizeOptions ro;
        ro.new_size_blocks = sb.blocks_count - 512;
        (void)fsim::ResizeTool::resize(device, ro);
      }
    } else {
      // Interleave a repair-mode fsck (must be a no-op on a clean fs).
      (void)fsim::FsckTool::check(device, fsim::FsckOptions{.force = true, .repair = true});
    }

    const auto fsck = fsim::FsckTool::check(device, fsim::FsckOptions{.force = true});
    ASSERT_TRUE(fsck.ok());
    ASSERT_TRUE(fsck.value().isClean())
        << "step " << step << ": " << fsck.value().summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsimSequenceProperty,
                         ::testing::Values(5u, 77u, 901u, 20240u, 777777u));

// ---------------------------------------------------------------------
// Fault-schedule sweep: random op x crash index x torn prefix. A crash
// may cost the interrupted operation, but the recovered image must
// either pass fsck or be flagged for repair — never be silently
// inconsistent (the fixed toolchain's core crash-safety property).
// ---------------------------------------------------------------------

class FaultScheduleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultScheduleSweep, CrashedImagesAreNeverSilentlyInconsistent) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t op = rng.below(5);

    fsim::BlockDevice device(8192, 1024);
    fsim::MkfsOptions mk;
    mk.block_size = 1024;
    mk.size_blocks = 2048;
    mk.blocks_per_group = 512;
    mk.inode_ratio = 8192;
    if (op == 2) {  // the resize op runs on a sparse_super2 filesystem
      mk.sparse_super2 = true;
      mk.resize_inode = false;
    }
    ASSERT_TRUE(fsim::MkfsTool::format(device, mk).ok());

    tools::CrashCanary canary;
    {
      auto mounted = fsim::MountTool::mount(device, fsim::MountOptions{});
      ASSERT_TRUE(mounted.ok());
      const auto ino = mounted.value().createFile(6144, 2);
      if (ino.ok()) {
        canary.ino = ino.value();
        canary.size_bytes = 6144;
      }
      mounted.value().unmount();
    }

    fsim::FaultPlan plan;
    plan.seed = rng.next();
    plan.crash_at_write = rng.below(64);  // may be past the op's last write
    switch (rng.below(3)) {
      case 0: plan.torn_mode = fsim::TornMode::None; break;
      case 1:
        plan.torn_mode = fsim::TornMode::Prefix;
        plan.torn_prefix_bytes = rng.below(1025);
        break;
      default: plan.torn_mode = fsim::TornMode::Seeded; break;
    }
    device.setFaultPlan(plan);

    switch (op) {
      case 0: {  // journal cycle
        auto mounted = fsim::MountTool::mount(device, fsim::MountOptions{});
        if (mounted.ok()) {
          (void)mounted.value().createFile(1024 + rng.below(8) * 1024, rng.below(3));
          mounted.value().unmount();
        }
        break;
      }
      case 1:
      case 2: {  // grow (fixed accounting; op 2 on sparse_super2)
        fsim::ResizeOptions ro;
        ro.new_size_blocks = 2560 + rng.below(2) * 512;
        ro.fix_sparse_super2_accounting = true;
        (void)fsim::ResizeTool::resize(device, ro);
        break;
      }
      case 3: {  // defrag
        auto mounted = fsim::MountTool::mount(device, fsim::MountOptions{});
        if (mounted.ok()) {
          (void)fsim::DefragTool::run(mounted.value(), device, fsim::DefragOptions{});
          mounted.value().unmount();
        }
        break;
      }
      default: {  // tune
        fsim::TuneOptions t;
        t.label = "sweep";
        t.reserved_blocks_count = rng.below(512);
        (void)fsim::TuneTool::tune(device, t);
        break;
      }
    }

    device.clearFaults();
    std::string detail;
    const tools::CrashOutcome outcome =
        tools::classifyPostCrashImage(device, canary, detail);
    EXPECT_NE(outcome, tools::CrashOutcome::SilentCorruption)
        << "round " << round << " op " << op << ": " << detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScheduleSweep,
                         ::testing::Values(13u, 137u, 4242u, 500500u));

}  // namespace
}  // namespace fsdep
