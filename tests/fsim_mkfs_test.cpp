#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"

namespace fsdep::fsim {
namespace {

MkfsOptions smallFs() {
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 2048;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  return o;
}

TEST(Mkfs, ValidOptionsPass) {
  EXPECT_TRUE(MkfsTool::validate(smallFs(), 8 << 20).empty());
}

TEST(Mkfs, SelfDependencyViolations) {
  MkfsOptions o = smallFs();
  o.block_size = 512;
  EXPECT_FALSE(MkfsTool::validate(o, 8 << 20).empty());

  o = smallFs();
  o.inode_size = 64;
  EXPECT_FALSE(MkfsTool::validate(o, 8 << 20).empty());

  o = smallFs();
  o.reserved_ratio = 80;
  EXPECT_FALSE(MkfsTool::validate(o, 8 << 20).empty());

  o = smallFs();
  o.blocks_per_group = 100;  // < 256 and not a multiple of 8
  const auto violations = MkfsTool::validate(o, 8 << 20);
  EXPECT_GE(violations.size(), 2u);
}

TEST(Mkfs, CrossParameterViolations) {
  struct Case {
    const char* name;
    void (*mutate)(MkfsOptions&);
  };
  const Case cases[] = {
      {"meta_bg+resize_inode", [](MkfsOptions& o) { o.meta_bg = true; o.resize_inode = true; }},
      {"bigalloc-extents", [](MkfsOptions& o) { o.bigalloc = true; o.extents = false; }},
      {"sparse_super2+resize_inode",
       [](MkfsOptions& o) { o.sparse_super2 = true; o.resize_inode = true; }},
      {"64bit-extents", [](MkfsOptions& o) { o.has_64bit = true; o.extents = false; }},
      {"quota-journal", [](MkfsOptions& o) { o.quota = true; o.has_journal = false; }},
      {"uninit_bg+metadata_csum",
       [](MkfsOptions& o) { o.uninit_bg = true; o.metadata_csum = true; }},
      {"cluster-bigalloc", [](MkfsOptions& o) { o.cluster_size = 2048; o.bigalloc = false; }},
      {"inline_data-extents", [](MkfsOptions& o) { o.inline_data = true; o.extents = false; }},
      {"encrypt+bigalloc", [](MkfsOptions& o) { o.encrypt = true; o.bigalloc = true; }},
      {"inode>block", [](MkfsOptions& o) { o.inode_size = 2048; o.block_size = 1024; }},
  };
  for (const Case& c : cases) {
    MkfsOptions o = smallFs();
    c.mutate(o);
    EXPECT_FALSE(MkfsTool::validate(o, 8 << 20).empty()) << c.name;
  }
}

TEST(Mkfs, FormatProducesCleanFilesystem) {
  BlockDevice dev(4096, 1024);
  const auto sb = MkfsTool::format(dev, smallFs());
  ASSERT_TRUE(sb.ok()) << sb.error().message;
  EXPECT_EQ(sb.value().blocks_count, 2048u);
  EXPECT_EQ(sb.value().magic, kExt4Magic);

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Mkfs, RejectsInvalidConfiguration) {
  BlockDevice dev(4096, 1024);
  MkfsOptions o = smallFs();
  o.meta_bg = true;
  o.resize_inode = true;
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_FALSE(sb.ok());
  EXPECT_NE(sb.error().message.find("meta_bg"), std::string::npos);
}

TEST(Mkfs, RejectsDeviceBlockSizeMismatch) {
  BlockDevice dev(4096, 2048);
  const auto sb = MkfsTool::format(dev, smallFs());  // wants 1024
  EXPECT_FALSE(sb.ok());
}

TEST(Mkfs, RejectsSizeBeyondDevice) {
  BlockDevice dev(1024, 1024);
  MkfsOptions o = smallFs();
  o.size_blocks = 4096;
  EXPECT_FALSE(MkfsTool::format(dev, o).ok());
}

TEST(Mkfs, SparseSuper2SetsBackupGroups) {
  BlockDevice dev(4096, 1024);
  MkfsOptions o = smallFs();
  o.sparse_super2 = true;
  o.resize_inode = false;
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(sb.value().hasCompat(kCompatSparseSuper2));
  EXPECT_EQ(sb.value().backup_bgs[0], 1u);
  EXPECT_EQ(sb.value().backup_bgs[1], sb.value().groupCount() - 1);
}

TEST(Mkfs, FeatureFlagsLandInSuperblock) {
  BlockDevice dev(8192, 1024);
  MkfsOptions o = smallFs();
  o.has_64bit = true;
  o.quota = true;
  o.metadata_csum = true;
  o.uninit_bg = false;
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(sb.value().hasIncompat(kIncompat64Bit));
  EXPECT_TRUE(sb.value().hasRoCompat(kRoCompatQuota));
  EXPECT_TRUE(sb.value().hasRoCompat(kRoCompatMetadataCsum));
  EXPECT_EQ(sb.value().desc_size, 64);
}

TEST(Mkfs, LabelIsStored) {
  BlockDevice dev(4096, 1024);
  MkfsOptions o = smallFs();
  o.label = "scratch01";
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_TRUE(sb.ok());
  EXPECT_STREQ(sb.value().volume_name, "scratch01");
}

TEST(Mkfs, OversizedLabelIsTruncatedSafely) {
  BlockDevice dev(4096, 1024);
  MkfsOptions o = smallFs();
  o.label = "this-label-is-way-too-long-for-sixteen-bytes";
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sb.value().volume_name[15], '\0');
}

// Property sweep: every geometry in the grid formats to a clean fs whose
// accounting matches its bitmaps (mkfs/fsck agreement invariant).
struct Geometry {
  std::uint32_t block_size;
  std::uint32_t size_blocks;
  std::uint32_t blocks_per_group;
  bool sparse_super2;
  bool bigalloc;
};

class MkfsGeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(MkfsGeometrySweep, FormatsCleanly) {
  const Geometry g = GetParam();
  BlockDevice dev(g.size_blocks + 64, g.block_size);
  MkfsOptions o;
  o.block_size = g.block_size;
  o.size_blocks = g.size_blocks;
  o.blocks_per_group = g.blocks_per_group;
  o.inode_ratio = std::max<std::uint32_t>(g.block_size, 8192);
  o.sparse_super2 = g.sparse_super2;
  o.resize_inode = !g.sparse_super2;
  o.bigalloc = g.bigalloc;
  o.cluster_size = g.bigalloc ? g.block_size * 2 : 0;
  const auto sb = MkfsTool::format(dev, o);
  ASSERT_TRUE(sb.ok()) << sb.error().message;

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MkfsGeometrySweep,
    ::testing::Values(Geometry{1024, 2048, 512, false, false},
                      Geometry{1024, 2048, 512, true, false},
                      Geometry{1024, 4096, 1024, false, false},
                      Geometry{2048, 2048, 512, false, false},
                      Geometry{2048, 4096, 1024, true, false},
                      Geometry{4096, 4096, 1024, false, false},
                      Geometry{4096, 8192, 2048, false, true},
                      Geometry{1024, 1024, 256, false, false},
                      Geometry{1024, 3000, 512, false, false},  // short last group
                      Geometry{2048, 5000, 512, true, false},
                      Geometry{4096, 10000, 4096, false, false},
                      Geometry{1024, 8184, 1024, false, false}));

}  // namespace
}  // namespace fsdep::fsim
