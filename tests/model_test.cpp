#include <gtest/gtest.h>

#include "model/config_model.h"
#include "model/dependency.h"
#include "model/serialization.h"

namespace fsdep::model {
namespace {

TEST(ConfigModel, StageNamesRoundTrip) {
  for (const ConfigStage stage : {ConfigStage::Create, ConfigStage::Mount, ConfigStage::Online,
                                  ConfigStage::Offline}) {
    EXPECT_EQ(configStageFromName(configStageName(stage)), stage);
  }
  EXPECT_FALSE(configStageFromName("bogus").has_value());
}

TEST(ConfigModel, ParamTypeNamesRoundTrip) {
  for (const ParamType type : {ParamType::Flag, ParamType::Integer, ParamType::String,
                               ParamType::Enum, ParamType::Size}) {
    EXPECT_EQ(paramTypeFromName(paramTypeName(type)), type);
  }
}

TEST(ConfigModel, EcosystemLookup) {
  Ecosystem eco;
  Component c;
  c.name = "mke2fs";
  Parameter p;
  p.component = "mke2fs";
  p.name = "blocksize";
  p.flag = "-b";
  c.parameters.push_back(p);
  eco.addComponent(std::move(c));

  ASSERT_NE(eco.findComponent("mke2fs"), nullptr);
  EXPECT_EQ(eco.findComponent("nope"), nullptr);
  ASSERT_NE(eco.findParameter("mke2fs.blocksize"), nullptr);
  EXPECT_EQ(eco.findParameter("mke2fs.blocksize")->flag, "-b");
  EXPECT_EQ(eco.findParameter("mke2fs.unknown"), nullptr);
  EXPECT_EQ(eco.findParameter("noDotHere"), nullptr);
  EXPECT_EQ(eco.totalParameterCount(), 1u);
}

TEST(Dependency, LevelsFromKinds) {
  EXPECT_EQ(depLevelOf(DepKind::SdDataType), DepLevel::SelfDependency);
  EXPECT_EQ(depLevelOf(DepKind::SdValueRange), DepLevel::SelfDependency);
  EXPECT_EQ(depLevelOf(DepKind::CpdControl), DepLevel::CrossParameter);
  EXPECT_EQ(depLevelOf(DepKind::CpdValue), DepLevel::CrossParameter);
  EXPECT_EQ(depLevelOf(DepKind::CcdControl), DepLevel::CrossComponent);
  EXPECT_EQ(depLevelOf(DepKind::CcdValue), DepLevel::CrossComponent);
  EXPECT_EQ(depLevelOf(DepKind::CcdBehavioral), DepLevel::CrossComponent);
}

TEST(Dependency, KindNamesRoundTrip) {
  for (const DepKind kind : {DepKind::SdDataType, DepKind::SdValueRange, DepKind::CpdControl,
                             DepKind::CpdValue, DepKind::CcdControl, DepKind::CcdValue,
                             DepKind::CcdBehavioral}) {
    EXPECT_EQ(depKindFromName(depKindName(kind)), kind);
  }
}

TEST(Dependency, ExcludesDedupKeyIsSymmetric) {
  Dependency a;
  a.kind = DepKind::CpdControl;
  a.op = ConstraintOp::Excludes;
  a.param = "mke2fs.meta_bg";
  a.other_param = "mke2fs.resize_inode";

  Dependency b = a;
  std::swap(b.param, b.other_param);

  EXPECT_EQ(a.dedupKey(), b.dedupKey());
}

TEST(Dependency, RequiresDedupKeyIsDirected) {
  Dependency a;
  a.kind = DepKind::CpdControl;
  a.op = ConstraintOp::Requires;
  a.param = "mke2fs.bigalloc";
  a.other_param = "mke2fs.extent";

  Dependency b = a;
  std::swap(b.param, b.other_param);

  EXPECT_NE(a.dedupKey(), b.dedupKey());
}

TEST(Dependency, SummaryMentionsEverything) {
  Dependency d;
  d.kind = DepKind::CcdValue;
  d.op = ConstraintOp::Ge;
  d.param = "resize2fs.size";
  d.other_param = "mke2fs.reserved_ratio";
  d.bridge_field = "ext4_super_block.s_r_blocks_count";
  const std::string s = d.summary();
  EXPECT_NE(s.find("resize2fs.size"), std::string::npos);
  EXPECT_NE(s.find("mke2fs.reserved_ratio"), std::string::npos);
  EXPECT_NE(s.find("s_r_blocks_count"), std::string::npos);
  EXPECT_NE(s.find("CCD"), std::string::npos);
}

TEST(Serialization, DependencyRoundTrip) {
  Dependency d;
  d.id = "sd-range-mke2fs-blocksize";
  d.kind = DepKind::SdValueRange;
  d.op = ConstraintOp::InRange;
  d.param = "mke2fs.blocksize";
  d.low = 1024;
  d.high = 65536;
  d.description = "block size range";
  d.trace = {"L10: blocksize <- parse_num(optarg)", "L42: guard"};

  const json::Value encoded = toJson(d);
  const Result<Dependency> decoded = dependencyFromJson(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, d.id);
  EXPECT_EQ(decoded.value().kind, d.kind);
  EXPECT_EQ(decoded.value().op, d.op);
  EXPECT_EQ(decoded.value().param, d.param);
  EXPECT_EQ(decoded.value().low, d.low);
  EXPECT_EQ(decoded.value().high, d.high);
  EXPECT_EQ(decoded.value().trace, d.trace);
  EXPECT_EQ(decoded.value().dedupKey(), d.dedupKey());
}

TEST(Serialization, DependencyListRoundTrip) {
  Dependency a;
  a.id = "a";
  a.kind = DepKind::CpdControl;
  a.op = ConstraintOp::Excludes;
  a.param = "x.p";
  a.other_param = "x.q";
  Dependency b;
  b.id = "b";
  b.kind = DepKind::CcdBehavioral;
  b.op = ConstraintOp::Influences;
  b.param = "y.r";
  b.other_param = "x.p";
  b.bridge_field = "s.f";

  const json::Value encoded = toJson(std::vector<Dependency>{a, b});
  const auto decoded = dependenciesFromJson(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 2u);
  EXPECT_EQ(decoded.value()[0].id, "a");
  EXPECT_EQ(decoded.value()[1].bridge_field, "s.f");
}

TEST(Serialization, EcosystemRoundTrip) {
  Ecosystem eco;
  Component c;
  c.name = "resize2fs";
  c.stage = ConfigStage::Offline;
  Parameter p;
  p.component = "resize2fs";
  p.name = "size";
  p.flag = "size";
  p.type = ParamType::Size;
  p.stage = ConfigStage::Offline;
  c.parameters.push_back(p);
  eco.addComponent(std::move(c));

  const auto decoded = ecosystemFromJson(toJson(eco));
  ASSERT_TRUE(decoded.ok());
  ASSERT_NE(decoded.value().findComponent("resize2fs"), nullptr);
  const Parameter* rp = decoded.value().findParameter("resize2fs.size");
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(rp->type, ParamType::Size);
  EXPECT_EQ(rp->stage, ConfigStage::Offline);
}

TEST(Serialization, RejectsBadKind) {
  json::Object o;
  o["id"] = "x";
  o["kind"] = "not-a-kind";
  o["op"] = "==";
  o["param"] = "a.b";
  EXPECT_FALSE(dependencyFromJson(o).ok());
}

}  // namespace
}  // namespace fsdep::model
