// The corpus amplifier's contract: generation is pure (same options ->
// byte-identical sources and seeds, regardless of how many corpora came
// before), different seeds actually vary the corpus, the registry routes
// through the normal corpus entry points, and the synthetic components
// exercise the inter-procedural engine — a writer persists main()'s
// locals through a cross-function sink, so inter-procedural analysis
// must see strictly more labeled writes and dependencies than intra.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/amplify.h"
#include "corpus/corpus.h"
#include "corpus/pipeline.h"
#include "extract/extractor.h"

namespace fsdep::corpus {
namespace {

std::string replaceAll(std::string text, const std::string& from, const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

// "amp<gen>_<0000>" -> "amp<gen>_" (the part that changes per generation).
std::string generationPrefix(const std::string& name) {
  return name.substr(0, name.size() - 4);
}

TEST(Amplify, SameOptionsAreACheapNoOp) {
  const AmplifyOptions options{.factor = 2, .seed = 7};
  const std::vector<std::string> names = amplifyCorpus(options);
  ASSERT_EQ(names.size(), 2 * componentNames().size());
  const std::string source{*amplifiedSource(names[0])};

  EXPECT_EQ(amplifyCorpus(options), names);
  EXPECT_EQ(std::string(*amplifiedSource(names[0])), source);
  EXPECT_EQ(amplifiedComponentNames(), names);
}

TEST(Amplify, RegenerationIsPureModuloGenerationPrefix) {
  const AmplifyOptions options{.factor = 2, .seed = 99};
  const std::vector<std::string> first = amplifyCorpus(options);
  std::vector<std::string> first_sources;
  for (const std::string& name : first) first_sources.emplace_back(*amplifiedSource(name));
  std::vector<std::vector<taint::Seed>> first_seeds;
  for (const std::string& name : first) first_seeds.push_back(amplifiedSeeds(name));

  clearAmplifiedCorpus();
  const std::vector<std::string> second = amplifyCorpus(options);
  ASSERT_EQ(first.size(), second.size());
  const std::string old_prefix = generationPrefix(first[0]);
  const std::string new_prefix = generationPrefix(second[0]);
  ASSERT_NE(old_prefix, new_prefix);  // stale cache entries can never alias

  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(replaceAll(std::string(*amplifiedSource(second[i])), new_prefix, old_prefix),
              first_sources[i])
        << second[i];
    const std::vector<taint::Seed> seeds = amplifiedSeeds(second[i]);
    ASSERT_EQ(seeds.size(), first_seeds[i].size()) << second[i];
    for (std::size_t j = 0; j < seeds.size(); ++j) {
      EXPECT_EQ(replaceAll(seeds[j].function, new_prefix, old_prefix),
                first_seeds[i][j].function);
      EXPECT_EQ(seeds[j].variable, first_seeds[i][j].variable);
      EXPECT_EQ(replaceAll(seeds[j].param, new_prefix, old_prefix), first_seeds[i][j].param);
    }
  }
}

TEST(Amplify, DifferentSeedsVaryTheCorpus) {
  const std::vector<std::string> a = amplifyCorpus({.factor = 2, .seed = 1});
  std::vector<std::string> a_sources;
  for (const std::string& name : a) a_sources.emplace_back(*amplifiedSource(name));

  const std::vector<std::string> b = amplifyCorpus({.factor = 2, .seed = 2});
  ASSERT_EQ(a.size(), b.size());
  const std::string a_prefix = generationPrefix(a[0]);
  const std::string b_prefix = generationPrefix(b[0]);
  std::size_t different = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (replaceAll(std::string(*amplifiedSource(b[i])), b_prefix, a_prefix) != a_sources[i]) {
      ++different;
    }
  }
  EXPECT_GT(different, 0u);
}

TEST(Amplify, RegistryRoutesThroughCorpusEntryPoints) {
  const std::vector<std::string> names = amplifyCorpus({.factor = 1, .seed = 42});
  ASSERT_FALSE(names.empty());
  EXPECT_FALSE(componentSource(names[0]).empty());
  EXPECT_TRUE(headerSource("amp_sb_0.h").has_value());
  EXPECT_FALSE(headerSource("amp_sb_1.h").has_value());  // factor 1 = one ecosystem
  EXPECT_FALSE(componentSeeds(names[0]).empty());
  EXPECT_FALSE(isKernelComponent(names[0]));

  clearAmplifiedCorpus();
  EXPECT_TRUE(componentSource(names[0]).empty());
  EXPECT_TRUE(componentSeeds(names[0]).empty());
}

TEST(Amplify, InterProceduralSeesCrossFunctionSinks) {
  // names[0] is a writer: main() computes config locals and persists
  // them only through the _write_super helper.
  const std::vector<std::string> names = amplifyCorpus({.factor = 1, .seed = 42});
  ASSERT_FALSE(names.empty());

  taint::AnalysisOptions inter;
  inter.inter_procedural = true;
  AnalyzedComponent inter_writer(names[0], inter);
  inter_writer.analyze({});
  AnalyzedComponent intra_writer(names[0], taint::AnalysisOptions{});
  intra_writer.analyze({});
  EXPECT_GT(inter_writer.analyzer().writeEvents().size(),
            intra_writer.analyzer().writeEvents().size());

  // Over the whole synthetic ecosystem, the cross-function field stores
  // turn into extracted dependencies only inter-procedurally.
  const auto extractWith = [&names](const taint::AnalysisOptions& topts) {
    std::vector<AnalyzedComponent> components;
    components.reserve(names.size());
    std::vector<extract::ComponentRun> runs;
    for (const std::string& name : names) {
      components.emplace_back(name, topts).analyze({});
    }
    for (const AnalyzedComponent& component : components) runs.push_back(component.asRun());
    return extract::extractDependencies(runs, amplifiedExtractOptions()).size();
  };
  EXPECT_GT(extractWith(inter), extractWith(taint::AnalysisOptions{}));
}

TEST(Amplify, SummaryAndLegacyEnginesAgreeOnAmplifiedCorpus) {
  const std::vector<std::string> names = amplifyCorpus({.factor = 1, .seed = 42});
  taint::AnalysisOptions summary;
  summary.inter_procedural = true;
  taint::AnalysisOptions legacy = summary;
  legacy.summaries = false;

  for (const std::string& name : names) {
    AnalyzedComponent a(name, summary);
    a.analyze({});
    AnalyzedComponent b(name, legacy);
    b.analyze({});
    const auto a_events = a.analyzer().writeEvents();
    const auto b_events = b.analyzer().writeEvents();
    ASSERT_EQ(a_events.size(), b_events.size()) << name;
    for (std::size_t i = 0; i < a_events.size(); ++i) {
      EXPECT_EQ(a_events[i]->object, b_events[i]->object) << name;
      EXPECT_EQ(taint::labelSetToString(a.analyzer().labels(), a_events[i]->labels),
                taint::labelSetToString(b.analyzer().labels(), b_events[i]->labels))
          << name;
    }
  }
}

}  // namespace
}  // namespace fsdep::corpus
