#include <gtest/gtest.h>

#include "ast/parser.h"
#include "extract/extractor.h"
#include "lex/lexer.h"
#include "sema/sema.h"

namespace fsdep::extract {
namespace {

using model::ConstraintOp;
using model::DepKind;
using model::Dependency;

/// One self-contained analyzed component for extraction tests.
struct MiniComponent {
  std::string name;
  std::unique_ptr<ast::TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::unique_ptr<taint::Analyzer> analyzer;

  MiniComponent(std::string component, const std::string& text,
                const std::vector<taint::Seed>& seeds, taint::AnalysisOptions options = {}) {
    name = std::move(component);
    static SourceManager sm;
    static DiagnosticEngine diags;
    diags.clear();
    const FileId file = sm.addBuffer(name + ".c", text);
    lex::Lexer lexer(sm, file, diags);
    ast::Parser parser(lexer.lexAll(), diags);
    tu = parser.parseTranslationUnit(name + ".c");
    EXPECT_FALSE(diags.hasErrors()) << diags.render(sm);
    sema = std::make_unique<sema::Sema>(*tu, diags);
    sema->run();
    analyzer = std::make_unique<taint::Analyzer>(*tu, *sema, options);
    for (const taint::Seed& seed : seeds) analyzer->addSeed(seed);
    analyzer->run();
  }

  [[nodiscard]] ComponentRun run() const {
    return ComponentRun{name, false, analyzer.get(), sema.get()};
  }
};

ExtractOptions defaultOptions() {
  ExtractOptions o;
  o.metadata_owner = "kernel";
  o.parser_types = {{"parse_num", "integer"}, {"parse_size", "size"}};
  o.error_functions = {"usage", "fatal_error"};
  return o;
}

const Dependency* findByKey(const std::vector<Dependency>& deps, const Dependency& probe) {
  for (const Dependency& d : deps) {
    if (d.dedupKey() == probe.dedupKey()) return &d;
  }
  return nullptr;
}

TEST(Extract, SdDataTypeFromParserCall) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "long parse_num(char *s);\n"
                  "char *optarg;\n"
                  "void main_fn(void) { long bs = 0; bs = parse_num(optarg); }",
                  {{"main_fn", "bs", "tool.blocksize"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, DepKind::SdDataType);
  EXPECT_EQ(deps[0].param, "tool.blocksize");
  EXPECT_EQ(deps[0].type_name, "integer");
}

TEST(Extract, SdRangeFromGuards) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long bs = 4096;\n"
                  "  if (bs < 1024 || bs > 65536) { usage(); }\n"
                  "}",
                  {{"main_fn", "bs", "tool.blocksize"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, DepKind::SdValueRange);
  EXPECT_EQ(deps[0].op, ConstraintOp::InRange);
  EXPECT_EQ(deps[0].low, 1024);
  EXPECT_EQ(deps[0].high, 65536);
}

TEST(Extract, SdRangeBoundsMergeAcrossGuards) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long v = 0;\n"
                  "  if (v < 10) { usage(); }\n"
                  "  if (v > 100) { usage(); }\n"
                  "  if (v > 200) { usage(); }\n"
                  "}",
                  {{"main_fn", "v", "tool.v"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].low, 10);
  EXPECT_EQ(deps[0].high, 100) << "the tighter bound wins";
}

TEST(Extract, SdRangeErrorOnFalseArm) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long v = 0;\n"
                  "  if (v >= 8) { v = v + 1; } else { usage(); }\n"
                  "}",
                  {{"main_fn", "v", "tool.v"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].low, 8);
}

TEST(Extract, SdMultipleOfAndPowerOfTwo) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long g = 0; long f = 0;\n"
                  "  if (g % 8) { usage(); }\n"
                  "  if (f & (f - 1)) { usage(); }\n"
                  "}",
                  {{"main_fn", "g", "tool.g"}, {"main_fn", "f", "tool.f"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 2u);
  const Dependency* g_dep = nullptr;
  const Dependency* f_dep = nullptr;
  for (const Dependency& d : deps) {
    if (d.param == "tool.g") g_dep = &d;
    if (d.param == "tool.f") f_dep = &d;
  }
  ASSERT_NE(g_dep, nullptr);
  EXPECT_EQ(g_dep->op, ConstraintOp::MultipleOf);
  EXPECT_EQ(g_dep->low, 8);
  ASSERT_NE(f_dep, nullptr);
  EXPECT_EQ(f_dep->op, ConstraintOp::PowerOfTwo);
}

TEST(Extract, CpdControlExcludes) {
  MiniComponent c("tool",
                  "void fatal_error(const char *m);\n"
                  "void main_fn(void) {\n"
                  "  int a = 0; int b = 0;\n"
                  "  if (a && b) { fatal_error(\"no\"); }\n"
                  "}",
                  {{"main_fn", "a", "tool.a"}, {"main_fn", "b", "tool.b"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, DepKind::CpdControl);
  EXPECT_EQ(deps[0].op, ConstraintOp::Excludes);
}

TEST(Extract, CpdControlRequires) {
  MiniComponent c("tool",
                  "void fatal_error(const char *m);\n"
                  "void main_fn(void) {\n"
                  "  int child = 0; int parent = 0;\n"
                  "  if (child && !parent) { fatal_error(\"no\"); }\n"
                  "}",
                  {{"main_fn", "child", "tool.child"}, {"main_fn", "parent", "tool.parent"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].op, ConstraintOp::Requires);
  EXPECT_EQ(deps[0].param, "tool.child");
  EXPECT_EQ(deps[0].other_param, "tool.parent");
}

TEST(Extract, CpdValueComparison) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long inode = 0; long block = 0;\n"
                  "  if (inode > block) { usage(); }\n"
                  "}",
                  {{"main_fn", "inode", "tool.inode"}, {"main_fn", "block", "tool.block"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, DepKind::CpdValue);
  EXPECT_EQ(deps[0].op, ConstraintOp::Le);
  EXPECT_EQ(deps[0].param, "tool.inode");
  EXPECT_EQ(deps[0].other_param, "tool.block");
}

// Shared metadata bridging between two components.
struct BridgedPair {
  MiniComponent writer;
  MiniComponent reader;

  explicit BridgedPair(const std::string& reader_code,
                       const std::vector<taint::Seed>& reader_seeds)
      : writer("mke2fs",
               "struct super { unsigned int blocks; unsigned int compat; };\n"
               "void write_super(struct super *sb) {\n"
               "  long size = 0; int featurex = 0;\n"
               "  sb->blocks = size;\n"
               "  sb->compat |= (featurex ? 16 : 0);\n"
               "}",
               {{"write_super", "size", "mke2fs.size"},
                {"write_super", "featurex", "mke2fs.featurex"}}),
        reader("resize2fs",
               "struct super { unsigned int blocks; unsigned int compat; };\n"
               "void grow(struct super *sb);\nvoid shrink(struct super *sb);\n"
               "void fatal_error(const char *m);\n" +
                   reader_code,
               reader_seeds) {}

  [[nodiscard]] std::vector<Dependency> extract(bool bridging = true) const {
    ExtractOptions o = defaultOptions();
    o.enable_bridging = bridging;
    return extractDependencies({writer.run(), reader.run()}, o);
  }
};

TEST(Extract, CcdValueThroughBridge) {
  BridgedPair pair(
      "void check(struct super *sb) {\n"
      "  long target = 0;\n"
      "  if (target < sb->blocks) { fatal_error(\"too small\"); }\n"
      "}",
      {{"check", "target", "resize2fs.size"}});
  const auto deps = pair.extract();
  Dependency probe;
  probe.kind = DepKind::CcdValue;
  probe.op = ConstraintOp::Ge;
  probe.param = "resize2fs.size";
  probe.other_param = "mke2fs.size";
  const Dependency* found = findByKey(deps, probe);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->bridge_field, "super.blocks");
}

TEST(Extract, CcdControlThroughMaskedBridge) {
  BridgedPair pair(
      "void check(struct super *sb) {\n"
      "  int online = 0;\n"
      "  if (online && !(sb->compat & 16)) { fatal_error(\"need featurex\"); }\n"
      "}",
      {{"check", "online", "resize2fs.online"}});
  const auto deps = pair.extract();
  Dependency probe;
  probe.kind = DepKind::CcdControl;
  probe.op = ConstraintOp::Requires;
  probe.param = "resize2fs.online";
  probe.other_param = "mke2fs.featurex";
  EXPECT_NE(findByKey(deps, probe), nullptr);
}

TEST(Extract, MaskMismatchDoesNotBridge) {
  BridgedPair pair(
      "void check(struct super *sb) {\n"
      "  int online = 0;\n"
      "  if (online && !(sb->compat & 4)) { fatal_error(\"other bit\"); }\n"
      "}",
      {{"check", "online", "resize2fs.online"}});
  const auto deps = pair.extract();
  for (const Dependency& d : deps) {
    EXPECT_NE(d.other_param, "mke2fs.featurex")
        << "bit 4 test must not match the featurex writer of bit 16";
  }
}

TEST(Extract, CcdBehavioralFromBranch) {
  BridgedPair pair(
      "void decide(struct super *sb) {\n"
      "  long target = 0;\n"
      "  if (target > sb->blocks) { grow(sb); } else { shrink(sb); }\n"
      "}",
      {{"decide", "target", "resize2fs.size"}});
  const auto deps = pair.extract();
  Dependency probe;
  probe.kind = DepKind::CcdBehavioral;
  probe.op = ConstraintOp::Influences;
  probe.param = "resize2fs.size";
  probe.other_param = "mke2fs.size";
  EXPECT_NE(findByKey(deps, probe), nullptr);
}

TEST(Extract, CcdBehavioralFromDerivation) {
  BridgedPair pair(
      "void derive(struct super *sb) {\n"
      "  long target = 0;\n"
      "  long scaled = target + sb->blocks;\n"
      "  grow(sb);\n"
      "  if (scaled > 0) { shrink(sb); }\n"
      "}",
      {{"derive", "target", "resize2fs.size"}});
  const auto deps = pair.extract();
  Dependency probe;
  probe.kind = DepKind::CcdBehavioral;
  probe.op = ConstraintOp::Influences;
  probe.param = "resize2fs.size";
  probe.other_param = "mke2fs.size";
  EXPECT_NE(findByKey(deps, probe), nullptr);
}

TEST(Extract, BridgingAblationKillsCcd) {
  BridgedPair pair(
      "void decide(struct super *sb) {\n"
      "  long target = 0;\n"
      "  if (target > sb->blocks) { grow(sb); } else { shrink(sb); }\n"
      "}",
      {{"decide", "target", "resize2fs.size"}});
  const auto deps = pair.extract(/*bridging=*/false);
  for (const Dependency& d : deps) {
    EXPECT_NE(d.level(), model::DepLevel::CrossComponent)
        << "with bridging disabled no CCD may survive: " << d.summary();
  }
}

TEST(Extract, FieldVsConstantBecomesOwnerSd) {
  ExtractOptions o = defaultOptions();
  o.metadata_owner = "ext4";
  MiniComponent c("kernelish",
                  "struct super { unsigned int log_bs; };\n"
                  "void usage(void);\n"
                  "void validate(struct super *sb) {\n"
                  "  if (sb->log_bs > 6) { usage(); }\n"
                  "}",
                  {});
  const auto deps = extractDependencies({c.run()}, o);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, DepKind::SdValueRange);
  EXPECT_EQ(deps[0].param, "ext4.log_bs");
  EXPECT_EQ(deps[0].high, 6);
}

TEST(Extract, LoopConditionsAreIgnored) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long n = 0;\n"
                  "  while (n < 100) { n = n + 1; }\n"
                  "}",
                  {{"main_fn", "n", "tool.n"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  EXPECT_TRUE(deps.empty());
}

TEST(Extract, SwitchDispatchIsIgnored) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  long n = 0;\n"
                  "  switch (n) { case 1: usage(); break; default: break; }\n"
                  "}",
                  {{"main_fn", "n", "tool.n"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  EXPECT_TRUE(deps.empty());
}

TEST(Extract, ThreeParameterSumIsSkipped) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void main_fn(void) {\n"
                  "  int a = 0; int b = 0; int d = 0;\n"
                  "  int conflict = a + b + d;\n"
                  "  if (conflict > 1) { usage(); }\n"
                  "}",
                  {{"main_fn", "a", "tool.a"},
                   {"main_fn", "b", "tool.b"},
                   {"main_fn", "d", "tool.d"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  EXPECT_TRUE(deps.empty()) << "ambiguous multi-parameter sums must not be forced into pairs";
}

TEST(Extract, DedupAcrossDuplicateGuards) {
  MiniComponent c("tool",
                  "void usage(void);\n"
                  "void one(void) { int a = 0; int b = 0; if (a && b) usage(); }\n"
                  "void two(void) { int a = 0; int b = 0; if (a && b) usage(); }",
                  {{"one", "a", "tool.a"},
                   {"one", "b", "tool.b"},
                   {"two", "a", "tool.a"},
                   {"two", "b", "tool.b"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u) << "the same dependency found twice must deduplicate";
}

TEST(Extract, RequiresViaErrorOnFalseArm) {
  MiniComponent c("tool",
                  "void fatal_error(const char *m);\n"
                  "void main_fn(void) {\n"
                  "  int child = 0; int parent = 0;\n"
                  "  if (!child || parent) { child = child; } else { fatal_error(\"no\"); }\n"
                  "}",
                  {{"main_fn", "child", "tool.child"}, {"main_fn", "parent", "tool.parent"}});
  // Error on the false arm: violation = !( !child || parent ) = child && !parent.
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].op, ConstraintOp::Requires);
  EXPECT_EQ(deps[0].param, "tool.child");
  EXPECT_EQ(deps[0].other_param, "tool.parent");
}

TEST(Extract, CcdControlExcludesThroughBridge) {
  BridgedPair pair(
      "void check(struct super *sb) {\n"
      "  int online = 0;\n"
      "  if (online && (sb->compat & 16)) { fatal_error(\"conflict\"); }\n"
      "}",
      {{"check", "online", "resize2fs.online"}});
  const auto deps = pair.extract();
  Dependency probe;
  probe.kind = DepKind::CcdControl;
  probe.op = ConstraintOp::Excludes;
  probe.param = "mke2fs.featurex";
  probe.other_param = "resize2fs.online";
  EXPECT_NE(findByKey(deps, probe), nullptr)
      << "excludes keys are symmetric; either orientation must match";
}

TEST(Extract, BehavioralGuardDedupsWithDerivation) {
  // The same (anchor, writer) pair reached through a guard AND a
  // derivation must stay one dependency.
  BridgedPair pair(
      "void both(struct super *sb) {\n"
      "  long target = 0;\n"
      "  long derived = target + sb->blocks;\n"
      "  if (target > sb->blocks) { grow(sb); } else { shrink(sb); }\n"
      "  if (derived > 0) { grow(sb); }\n"
      "}",
      {{"both", "target", "resize2fs.size"}});
  const auto deps = pair.extract();
  int behavioral_pairs = 0;
  for (const Dependency& d : deps) {
    if (d.kind == DepKind::CcdBehavioral && d.param == "resize2fs.size" &&
        d.other_param == "mke2fs.size") {
      ++behavioral_pairs;
    }
  }
  EXPECT_EQ(behavioral_pairs, 1);
}

TEST(Extract, ErrorGuardViaComErr) {
  ExtractOptions o = defaultOptions();
  o.error_functions.push_back("com_err");
  MiniComponent c("tool",
                  "void com_err(const char *who, const char *m);\n"
                  "void main_fn(void) {\n"
                  "  long v = 0;\n"
                  "  if (v > 100) { com_err(\"tool\", \"too big\"); return; }\n"
                  "}",
                  {{"main_fn", "v", "tool.v"}});
  const auto deps = extractDependencies({c.run()}, o);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].high, 100);
}

TEST(Extract, NegativeReturnCountsAsError) {
  MiniComponent c("tool",
                  "int main_fn(void) {\n"
                  "  long v = 0;\n"
                  "  if (v < 5) { return -22; }\n"
                  "  return 0;\n"
                  "}",
                  {{"main_fn", "v", "tool.v"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].low, 5);
}

TEST(Extract, PositiveReturnIsNotAnError) {
  MiniComponent c("tool",
                  "int main_fn(void) {\n"
                  "  long v = 0;\n"
                  "  if (v < 5) { return 1; }\n"
                  "  return 0;\n"
                  "}",
                  {{"main_fn", "v", "tool.v"}});
  const auto deps = extractDependencies({c.run()}, defaultOptions());
  EXPECT_TRUE(deps.empty()) << "a positive status return must not create a constraint";
}

}  // namespace
}  // namespace fsdep::extract
