// Observability under the amplified corpus: running `fsdep amplify`
// with tracing, metrics and profiling enabled must not perturb its
// stdout, in both taint engine modes. Timing lines vary run to run, so
// the comparison strips them; everything else (counts, dependency
// totals, engine name) must match byte for byte. check_sanitize.sh also
// runs this binary under TSan — the amplified run is the most
// thread-hostile workload the obs layer sees.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fsdep {
namespace {

std::string tempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string runCli(const std::string& args) {
  const std::string command = std::string(FSDEP_CLI_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) out.append(buffer, n);
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << command << "\n" << out;
  return out;
}

/// Drops the wall-clock timing lines ("generate X ms, ...") — the only
/// run-varying part of amplify's text output.
std::string withoutTimings(const std::string& text) {
  std::stringstream in(text);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    if (line.find(" ms") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

class CliObsAmplify : public ::testing::TestWithParam<const char*> {};

TEST_P(CliObsAmplify, InstrumentationKeepsStdoutIdentical) {
  const std::string mode = GetParam();
  const std::string base = "amplify --factor 50 --seed 42 " + mode;
  const std::string trace = tempPath(("amplify_trace_" + mode.substr(2) + ".json").c_str());
  const std::string metrics =
      tempPath(("amplify_metrics_" + mode.substr(2) + ".json").c_str());
  const std::string profile =
      tempPath(("amplify_profile_" + mode.substr(2) + ".json").c_str());

  const std::string plain = runCli(base);
  const std::string instrumented = runCli(base + " --trace " + trace + " --metrics " +
                                          metrics + " --profile " + profile +
                                          " --profile-format json");

  EXPECT_EQ(withoutTimings(plain), withoutTimings(instrumented));
  // Sanity: the run actually analyzed the amplified corpus.
  EXPECT_NE(plain.find("components:   300"), std::string::npos) << plain;
}

INSTANTIATE_TEST_SUITE_P(Engines, CliObsAmplify, ::testing::Values("--inter", "--intra"));

}  // namespace
}  // namespace fsdep
