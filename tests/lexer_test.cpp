#include <gtest/gtest.h>

#include "lex/lexer.h"

namespace fsdep::lex {
namespace {

std::vector<Token> lexText(const std::string& text, DiagnosticEngine* diags_out = nullptr) {
  static SourceManager sm;  // keeps buffers alive across assertions
  static DiagnosticEngine scratch;
  DiagnosticEngine& diags = diags_out != nullptr ? *diags_out : scratch;
  scratch.clear();
  const FileId file = sm.addBuffer("test.c", text);
  Lexer lexer(sm, file, diags);
  return lexer.lexAll();
}

TEST(Lexer, Identifiers) {
  const auto tokens = lexText("foo _bar baz_9");
  ASSERT_EQ(tokens.size(), 3u);
  for (const Token& t : tokens) EXPECT_EQ(t.kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz_9");
}

TEST(Lexer, Keywords) {
  const auto tokens = lexText("int unsigned struct enum if while return sizeof");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::KwUnsigned);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwStruct);
  EXPECT_EQ(tokens[3].kind, TokenKind::KwEnum);
  EXPECT_EQ(tokens[4].kind, TokenKind::KwIf);
  EXPECT_EQ(tokens[5].kind, TokenKind::KwWhile);
  EXPECT_EQ(tokens[6].kind, TokenKind::KwReturn);
  EXPECT_EQ(tokens[7].kind, TokenKind::KwSizeof);
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lexText("0 42 0x1F 0755 100UL 7u");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 31);
  EXPECT_EQ(tokens[3].int_value, 493);
  EXPECT_EQ(tokens[4].int_value, 100);
  EXPECT_EQ(tokens[5].int_value, 7);
  for (const Token& t : tokens) EXPECT_EQ(t.kind, TokenKind::IntLiteral);
}

TEST(Lexer, CharLiterals) {
  const auto tokens = lexText(R"('a' '\n' '\0' '\'')");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].int_value, 'a');
  EXPECT_EQ(tokens[1].int_value, '\n');
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_EQ(tokens[3].int_value, '\'');
}

TEST(Lexer, StringLiterals) {
  const auto tokens = lexText(R"("hello" "a\tb" "")");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\tb");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(Lexer, OperatorsMaximalMunch) {
  const auto tokens = lexText("<<= >>= << >> <= >= == != && || |= &= ^= -> ++ -- ...");
  const TokenKind expected[] = {
      TokenKind::ShlAssign, TokenKind::ShrAssign, TokenKind::Shl, TokenKind::Shr,
      TokenKind::LessEqual, TokenKind::GreaterEqual, TokenKind::EqualEqual, TokenKind::BangEqual,
      TokenKind::AmpAmp, TokenKind::PipePipe, TokenKind::PipeAssign, TokenKind::AmpAssign,
      TokenKind::CaretAssign, TokenKind::Arrow, TokenKind::PlusPlus, TokenKind::MinusMinus,
      TokenKind::Ellipsis,
  };
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (std::size_t i = 0; i < tokens.size(); ++i) EXPECT_EQ(tokens[i].kind, expected[i]) << i;
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lexText("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, LocationsAndLineStart) {
  const auto tokens = lexText("one two\nthree");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_TRUE(tokens[0].start_of_line);
  EXPECT_EQ(tokens[1].loc.column, 5u);
  EXPECT_FALSE(tokens[1].start_of_line);
  EXPECT_EQ(tokens[2].loc.line, 2u);
  EXPECT_TRUE(tokens[2].start_of_line);
}

TEST(Lexer, UnterminatedCommentIsAnError) {
  DiagnosticEngine diags;
  lexText("a /* never closed", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnterminatedStringIsAnError) {
  DiagnosticEngine diags;
  lexText("\"oops\n", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnknownCharacterIsSkippedWithError) {
  DiagnosticEngine diags;
  const auto tokens = lexText("a @ b", &diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, HashTokenAtLineStart) {
  const auto tokens = lexText("#define X 1");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::Hash);
  EXPECT_TRUE(tokens[0].start_of_line);
  EXPECT_EQ(tokens[1].text, "define");
}

// Property-style sweep: every single-operator string lexes back to
// exactly one token whose name equals its spelling.
class LexerOperatorRoundTrip : public ::testing::TestWithParam<TokenKind> {};

TEST_P(LexerOperatorRoundTrip, SpellingLexesToKind) {
  const TokenKind kind = GetParam();
  const auto tokens = lexText(tokenKindName(kind));
  ASSERT_EQ(tokens.size(), 1u) << tokenKindName(kind);
  EXPECT_EQ(tokens[0].kind, kind);
}

INSTANTIATE_TEST_SUITE_P(
    Operators, LexerOperatorRoundTrip,
    ::testing::Values(TokenKind::Plus, TokenKind::Minus, TokenKind::Star, TokenKind::Slash,
                      TokenKind::Percent, TokenKind::Amp, TokenKind::Pipe, TokenKind::Caret,
                      TokenKind::Tilde, TokenKind::Bang, TokenKind::Shl, TokenKind::Shr,
                      TokenKind::Less, TokenKind::Greater, TokenKind::LessEqual,
                      TokenKind::GreaterEqual, TokenKind::EqualEqual, TokenKind::BangEqual,
                      TokenKind::AmpAmp, TokenKind::PipePipe, TokenKind::Assign,
                      TokenKind::PlusAssign, TokenKind::MinusAssign, TokenKind::StarAssign,
                      TokenKind::SlashAssign, TokenKind::PercentAssign, TokenKind::AmpAssign,
                      TokenKind::PipeAssign, TokenKind::CaretAssign, TokenKind::ShlAssign,
                      TokenKind::ShrAssign, TokenKind::PlusPlus, TokenKind::MinusMinus,
                      TokenKind::Arrow, TokenKind::Dot, TokenKind::Comma, TokenKind::Semicolon,
                      TokenKind::Colon, TokenKind::Question, TokenKind::LParen, TokenKind::RParen,
                      TokenKind::LBrace, TokenKind::RBrace, TokenKind::LBracket,
                      TokenKind::RBracket));

}  // namespace
}  // namespace fsdep::lex
