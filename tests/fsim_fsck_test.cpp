#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"

namespace fsdep::fsim {
namespace {

BlockDevice makeFs() {
  BlockDevice dev(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 4096;
  o.blocks_per_group = 1024;
  o.inode_ratio = 8192;
  EXPECT_TRUE(MkfsTool::format(dev, o).ok());
  return dev;
}

TEST(Fsck, CleanFilesystemSkipsWithoutForce) {
  BlockDevice dev = makeFs();
  const auto report = FsckTool::check(dev, FsckOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean_skip);
  EXPECT_NE(report.value().summary().find("skipped"), std::string::npos);
}

TEST(Fsck, ForceChecksEverything) {
  BlockDevice dev = makeFs();
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().clean_skip);
  EXPECT_TRUE(report.value().isClean());
}

TEST(Fsck, DetectsBadMagic) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.magic = 0;
  image.storeSuperblock(sb);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().corruptionCount(), 1);
}

TEST(Fsck, DetectsFreeCountMismatch) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  GroupDesc gd = image.loadGroupDesc(sb, 1);
  gd.free_blocks_count = static_cast<std::uint16_t>(gd.free_blocks_count - 3);
  image.storeGroupDesc(sb, 1, gd);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().corruptionCount(), 0);
}

TEST(Fsck, DetectsSuperblockChecksumMismatch) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.error_count = 99;  // change without refreshing the checksum
  image.storeSuperblock(sb);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  bool checksum_problem = false;
  for (const FsckProblem& p : report.value().problems) {
    checksum_problem |= p.description.find("checksum") != std::string::npos;
  }
  EXPECT_TRUE(checksum_problem);
}

TEST(Fsck, DetectsExtentBeyondEnd) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  Inode bad;
  bad.links = 1;
  bad.size_bytes = 1024;
  bad.extents = {{sb.blocks_count + 100, 4}};
  image.storeInode(sb, sb.first_inode, bad);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  bool found = false;
  for (const FsckProblem& p : report.value().problems) {
    found |= p.description.find("beyond the filesystem") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Fsck, DetectsInodeUsingFreeBlock) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  // Point an inode at a block that is free in the bitmap.
  Inode bad;
  bad.links = 1;
  bad.size_bytes = 1024;
  bad.extents = {{sb.blocks_count - 4, 1}};
  image.storeInode(sb, sb.first_inode, bad);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  bool found = false;
  for (const FsckProblem& p : report.value().problems) {
    found |= p.description.find("free in the bitmap") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Fsck, DetectsStaleBackups) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.blocks_count -= 8;  // primary diverges from the backups
  sb.updateChecksum();
  image.storeSuperblock(sb);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  bool stale = false;
  for (const FsckProblem& p : report.value().problems) {
    stale |= p.description.find("stale") != std::string::npos;
  }
  EXPECT_TRUE(stale);
}

TEST(Fsck, BackupSuperblockRecovery) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  const std::vector<std::uint32_t> backups = backupGroups(sb);
  ASSERT_FALSE(backups.empty());

  // Destroy the primary superblock.
  Superblock ruined = sb;
  ruined.magic = 0;
  image.storeSuperblock(ruined);

  const auto primary = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_GT(primary.value().corruptionCount(), 0);

  const auto recovered =
      FsckTool::check(dev, FsckOptions{.force = true, .backup_group = backups[0]});
  ASSERT_TRUE(recovered.ok());
  // Reading via the backup must at least see a valid magic again.
  bool bad_magic = false;
  for (const FsckProblem& p : recovered.value().problems) {
    bad_magic |= p.description.find("bad magic") != std::string::npos;
  }
  EXPECT_FALSE(bad_magic);
}

TEST(Fsck, RepairRestoresConsistency) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.free_blocks_count += 11;
  GroupDesc gd = image.loadGroupDesc(sb, 0);
  gd.free_inodes_count = static_cast<std::uint16_t>(gd.free_inodes_count + 2);
  image.storeGroupDesc(sb, 0, gd);
  sb.updateChecksum();
  image.storeSuperblock(sb);

  const auto repair = FsckTool::check(dev, FsckOptions{.force = true, .repair = true});
  ASSERT_TRUE(repair.ok());
  EXPECT_FALSE(repair.value().problems.empty());
  for (const FsckProblem& p : repair.value().problems) EXPECT_TRUE(p.fixed);

  const auto recheck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(recheck.ok());
  EXPECT_TRUE(recheck.value().isClean()) << recheck.value().summary();
}

TEST(Fsck, MediaErrorReportedAsCorruption) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  const GroupDesc gd = image.loadGroupDesc(sb, 1);
  dev.injectReadError(gd.block_bitmap);
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  bool unreadable = false;
  for (const FsckProblem& p : report.value().problems) {
    unreadable |= p.description.find("unreadable") != std::string::npos;
  }
  EXPECT_TRUE(unreadable);
}

TEST(Fsck, DirtyStateTriggersFullCheckWithoutForce) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.state = 0;
  sb.updateChecksum();
  image.storeSuperblock(sb);
  const auto report = FsckTool::check(dev, FsckOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().clean_skip);
}

}  // namespace
}  // namespace fsdep::fsim
