// ThreadPool / parallelFor coverage: index coverage, determinism of the
// write-into-slots pattern, exception propagation, FSDEP_JOBS resolution.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fsdep {
namespace {

TEST(ThreadPool, SubmitAndWaitRunsEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  int ran = 0;  // no atomics needed: everything runs on this thread
  pool.submit([&ran] { ++ran; });
  pool.submit([&ran] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), (round + 1) * 20);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::parallelFor(kN, 4, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, WritesIntoPreSizedSlotsMatchSerial) {
  constexpr std::size_t kN = 257;
  std::vector<int> serial(kN), parallel(kN);
  ThreadPool::parallelFor(kN, 1, [&serial](std::size_t i) {
    serial[i] = static_cast<int>(i * i % 97);
  });
  ThreadPool::parallelFor(kN, 8, [&parallel](std::size_t i) {
    parallel[i] = static_cast<int>(i * i % 97);
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ZeroAndOneIterationAreFine) {
  int ran = 0;
  ThreadPool::parallelFor(0, 4, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  ThreadPool::parallelFor(1, 4, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      ThreadPool::parallelFor(64, 4,
                              [](std::size_t i) {
                                if (i == 13) throw std::runtime_error("boom");
                              }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionDoesNotPoisonThePool) {
  try {
    ThreadPool::parallelFor(8, 4, [](std::size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error&) {
  }
  // The global pool must still work after a failed loop.
  std::atomic<int> ran{0};
  ThreadPool::parallelFor(32, 4, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

TEST(DefaultJobs, ReadsFsdepJobsEnvVar) {
  ::setenv("FSDEP_JOBS", "7", 1);
  EXPECT_EQ(ThreadPool::defaultJobs(), 7u);
  ::setenv("FSDEP_JOBS", "0", 1);  // not a positive integer: falls back
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
  ::setenv("FSDEP_JOBS", "bogus", 1);
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
  ::unsetenv("FSDEP_JOBS");
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(GlobalPool, SetGlobalJobsResizes) {
  const std::size_t before = ThreadPool::globalJobs();
  ThreadPool::setGlobalJobs(3);
  EXPECT_EQ(ThreadPool::globalJobs(), 3u);
  EXPECT_EQ(ThreadPool::global().threadCount(), 3u);
  ThreadPool::setGlobalJobs(before);
  EXPECT_EQ(ThreadPool::globalJobs(), before);
}

}  // namespace
}  // namespace fsdep
