// Journal semantics: crash leaves the journal dirty, mount replays it,
// noload skips recovery, fsck flags and repairs the recovery requirement.
#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"

namespace fsdep::fsim {
namespace {

BlockDevice makeFs(bool has_journal = true) {
  BlockDevice dev(8192, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = 4096;
  o.blocks_per_group = 1024;
  o.inode_ratio = 8192;
  o.has_journal = has_journal;
  EXPECT_TRUE(MkfsTool::format(dev, o).ok());
  return dev;
}

TEST(Journal, MkfsReservesTheArea) {
  BlockDevice dev = makeFs();
  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  EXPECT_GT(sb.journal_blocks, 0u);
  EXPECT_GT(sb.journal_start, 0u);
  // The journal blocks are accounted as used in group 0's bitmap.
  const Bitmap bitmap = image.loadBlockBitmap(sb, 0);
  const std::uint32_t first_bit = sb.journal_start - FsImage::groupFirstBlock(sb, 0);
  EXPECT_TRUE(bitmap.get(first_bit));
  EXPECT_TRUE(bitmap.get(first_bit + sb.journal_blocks - 1));
}

TEST(Journal, NoJournalMeansNoArea) {
  BlockDevice dev = makeFs(/*has_journal=*/false);
  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  EXPECT_EQ(sb.journal_blocks, 0u);
  EXPECT_FALSE(sb.hasCompat(kCompatHasJournal));
}

TEST(Journal, CleanUnmountLeavesQuiescentJournal) {
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  ASSERT_TRUE(mounted.value().createFile(2048).ok());
  mounted.value().unmount();
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().journal_dirty, 0);
}

TEST(Journal, CrashLeavesJournalDirtyAndFsckFlagsIt) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    ASSERT_TRUE(mounted.value().createFile(2048).ok());
    mounted.value().crash();  // no clean unmount write
  }
  FsImage image(dev);
  EXPECT_NE(image.loadSuperblock().journal_dirty, 0);

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  bool recovery_flagged = false;
  for (const FsckProblem& p : fsck.value().problems) {
    recovery_flagged |= p.description.find("journal needs recovery") != std::string::npos;
  }
  EXPECT_TRUE(recovery_flagged) << fsck.value().summary();
}

TEST(Journal, CrashPersistsDirtyBitItself) {
  // Regression: crash() must write the dirty bit to the medium, not
  // just flip an in-memory flag. Simulate intermediate writes having
  // scrubbed it (store a clean superblock behind the mount's back),
  // then crash — the on-device journal must still end up dirty.
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  ASSERT_TRUE(mounted.value().createFile(2048).ok());
  {
    FsImage image(dev);
    Superblock sb = image.loadSuperblock();
    sb.journal_dirty = 0;
    sb.updateChecksum();
    image.storeSuperblock(sb);
  }
  mounted.value().crash();
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().journal_dirty, 1);
  // And recovery proceeds exactly as after any crash: fsck demands a
  // replay, the next mount performs it.
  const auto report = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().isClean());
  auto again = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(again.ok());
  again.value().unmount();
  EXPECT_EQ(image.loadSuperblock().journal_dirty, 0);
}

TEST(Journal, CrashOnFrozenDeviceDoesNotThrow) {
  // A device frozen by the crash fault rejects the dirty-bit write;
  // crash() must absorb that (the bit set at mount time is on disk).
  BlockDevice dev = makeFs();
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  FaultPlan plan;
  plan.crash_at_write = 0;
  dev.setFaultPlan(plan);
  EXPECT_NO_THROW(mounted.value().crash());
  dev.clearFaults();
  // Mount-time dirty marking already persisted, so replay still happens.
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().journal_dirty, 1);
}

TEST(Journal, MountReplaysAfterCrash) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    ASSERT_TRUE(mounted.value().createFile(2048).ok());
    mounted.value().crash();
  }
  // Remount: replay runs, then a clean unmount leaves everything tidy.
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok()) << mounted.error().message;
    mounted.value().unmount();
  }
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Journal, NoloadSkipsRecoveryAndLeavesJournalDirty) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().crash();
  }
  MountOptions noload;
  noload.noload = true;
  noload.read_only = true;
  {
    auto mounted = MountTool::mount(dev, noload);
    ASSERT_TRUE(mounted.ok()) << mounted.error().message;
    mounted.value().unmount();  // read-only: writes nothing
  }
  FsImage image(dev);
  EXPECT_NE(image.loadSuperblock().journal_dirty, 0)
      << "noload must not replay the journal";
}

TEST(Journal, FsckRepairClearsRecoveryFlag) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().crash();
  }
  const auto repair = FsckTool::check(dev, FsckOptions{.force = true, .repair = true});
  ASSERT_TRUE(repair.ok());
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().journal_dirty, 0);
  const auto recheck = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_TRUE(recheck.value().isClean()) << recheck.value().summary();
}

TEST(Journal, ReplayRebuildsCountsFromBitmaps) {
  BlockDevice dev = makeFs();
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    ASSERT_TRUE(mounted.value().createFile(4096).ok());
    mounted.value().crash();
  }
  // Simulate the torn in-flight transaction: scramble the superblock's
  // free count the way a crash mid-update would.
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.free_blocks_count += 13;
  sb.updateChecksum();
  image.storeSuperblock(sb);

  // Replay on mount must rebuild the counts from the bitmaps.
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    mounted.value().unmount();
  }
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Journal, JournalledGeometrySurvivesMkfsFsck) {
  // Journal sizing must not break any of the standard geometries.
  for (const std::uint32_t size : {1024u, 2048u, 4096u, 8000u}) {
    BlockDevice dev(16384, 1024);
    MkfsOptions o;
    o.block_size = 1024;
    o.size_blocks = size;
    o.blocks_per_group = 512;
    o.inode_ratio = 8192;
    o.has_journal = true;
    ASSERT_TRUE(MkfsTool::format(dev, o).ok()) << size;
    const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
    EXPECT_TRUE(fsck.value().isClean()) << size << ": " << fsck.value().summary();
  }
}

}  // namespace
}  // namespace fsdep::fsim
