#include <gtest/gtest.h>

#include "fsim/defrag.h"
#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"

namespace fsdep::fsim {
namespace {

struct Fixture {
  BlockDevice dev{16384, 1024};
  std::vector<std::uint32_t> inos;

  explicit Fixture(bool extents = true) {
    MkfsOptions o;
    o.block_size = 1024;
    o.size_blocks = 8192;
    o.blocks_per_group = 2048;
    o.inode_ratio = 8192;
    o.extents = extents;
    EXPECT_TRUE(MkfsTool::format(dev, o).ok());
  }

  MountedFs mountAndFragment() {
    auto mounted = MountTool::mount(dev, MountOptions{});
    EXPECT_TRUE(mounted.ok());
    MountedFs fs = std::move(mounted).take();
    // Interleave allocations and deletions to fragment the free space.
    std::vector<std::uint32_t> doomed;
    for (int i = 0; i < 6; ++i) {
      const auto keep = fs.createFile(4096, 1);
      const auto kill = fs.createFile(2048, 1);
      EXPECT_TRUE(keep.ok());
      EXPECT_TRUE(kill.ok());
      inos.push_back(keep.value());
      doomed.push_back(kill.value());
    }
    for (const std::uint32_t ino : doomed) EXPECT_TRUE(fs.removeFile(ino).ok());
    return fs;
  }
};

TEST(Defrag, RequiresExtentFeature) {
  Fixture f(/*extents=*/false);
  auto mounted = MountTool::mount(f.dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  MountedFs fs = std::move(mounted).take();
  const auto report = DefragTool::run(fs, f.dev, DefragOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("extent"), std::string::npos);
}

TEST(Defrag, ReducesExtentCounts) {
  Fixture f;
  MountedFs fs = f.mountAndFragment();
  const auto before = DefragTool::run(fs, f.dev, DefragOptions{.stat_only = true});
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before.value().averageExtentsBefore(), 1.0)
      << "the fixture must actually fragment files";

  const auto report = DefragTool::run(fs, f.dev, DefragOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().defragmented, 0u);
  EXPECT_LT(report.value().averageExtentsAfter(), report.value().averageExtentsBefore());
}

TEST(Defrag, StatOnlyDoesNotMoveAnything) {
  Fixture f;
  MountedFs fs = f.mountAndFragment();
  const auto stat1 = DefragTool::run(fs, f.dev, DefragOptions{.stat_only = true});
  ASSERT_TRUE(stat1.ok());
  const auto stat2 = DefragTool::run(fs, f.dev, DefragOptions{.stat_only = true});
  ASSERT_TRUE(stat2.ok());
  EXPECT_EQ(stat1.value().averageExtentsBefore(), stat2.value().averageExtentsBefore());
  EXPECT_EQ(stat1.value().defragmented, 0u);
}

TEST(Defrag, FilesystemStaysConsistent) {
  Fixture f;
  {
    MountedFs fs = f.mountAndFragment();
    ASSERT_TRUE(DefragTool::run(fs, f.dev, DefragOptions{}).ok());
    fs.unmount();
  }
  const auto fsck = FsckTool::check(f.dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Defrag, FileContentsSizesPreserved) {
  Fixture f;
  MountedFs fs = f.mountAndFragment();
  ASSERT_TRUE(DefragTool::run(fs, f.dev, DefragOptions{}).ok());
  for (const std::uint32_t ino : f.inos) {
    const auto stat = fs.statFile(ino);
    ASSERT_TRUE(stat.has_value()) << ino;
    EXPECT_EQ(stat->size_bytes, 4096u);
  }
}

TEST(Defrag, EmptyFilesystemIsFine) {
  Fixture f;
  auto mounted = MountTool::mount(f.dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  MountedFs fs = std::move(mounted).take();
  const auto report = DefragTool::run(fs, f.dev, DefragOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().files.empty());
}

}  // namespace
}  // namespace fsdep::fsim
