// Error-path and robustness tests for the corpus pipeline wrapper.
#include <gtest/gtest.h>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

TEST(Pipeline, UnknownComponentThrows) {
  EXPECT_THROW(AnalyzedComponent("reiserfs", taint::AnalysisOptions{}), std::runtime_error);
}

TEST(Pipeline, UnknownFunctionThrows) {
  AnalyzedComponent component("mke2fs", taint::AnalysisOptions{});
  EXPECT_THROW(component.analyze({"not_a_function"}), std::runtime_error);
}

TEST(Pipeline, EmptySelectionAnalyzesEverything) {
  AnalyzedComponent component("resize2fs", taint::AnalysisOptions{});
  component.analyze({});
  // Every function definition of the TU must have a result.
  for (const ast::FunctionDecl* fn : component.tu().functions()) {
    EXPECT_NE(component.analyzer().resultFor(fn), nullptr) << fn->name;
  }
}

TEST(Pipeline, ReanalysisIsIdempotent) {
  AnalyzedComponent component("mke2fs", taint::AnalysisOptions{});
  component.analyze({"mke2fs_main"});
  const std::size_t first = component.analyzer().writeEvents().size();
  component.analyze({"mke2fs_main"});
  EXPECT_EQ(component.analyzer().writeEvents().size(), first);
}

TEST(Pipeline, ComponentRunPointsBackAtTheComponent) {
  AnalyzedComponent component("ext4", taint::AnalysisOptions{});
  component.analyze({"ext4_fill_super"});
  const extract::ComponentRun run = component.asRun();
  EXPECT_EQ(run.component, "ext4");
  EXPECT_TRUE(run.is_kernel);
  EXPECT_EQ(run.analyzer, &component.analyzer());
}

TEST(Pipeline, SourceManagerKeepsTheSources) {
  AnalyzedComponent component("e2fsck", taint::AnalysisOptions{});
  EXPECT_GE(component.sourceManager().fileCount(), 3u);  // main + 2 headers
  EXPECT_TRUE(component.sourceManager().findByName("e2fsck.c").valid());
  EXPECT_TRUE(component.sourceManager().findByName("ext4_fs.h").valid());
}

TEST(Pipeline, FormatTable5ContainsScenarioTitles) {
  const std::string table = formatTable5(runTable5());
  for (const Scenario& s : scenarios()) {
    EXPECT_NE(table.find(s.title), std::string::npos) << s.title;
  }
}

}  // namespace
}  // namespace fsdep::corpus
