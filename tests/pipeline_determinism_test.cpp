// Serial and parallel pipeline runs must be indistinguishable: the same
// dependencies, the same scores, byte-identical JSON — across repeated
// runs (the work-stealing order is nondeterministic; the results must
// not be).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/pipeline.h"
#include "json/json.h"
#include "model/serialization.h"

namespace fsdep::corpus {
namespace {

std::string table5Json(const PipelineOptions& pipeline,
                       const taint::AnalysisOptions& taint_options = {}) {
  const Table5Result result = runTable5(taint_options, nullptr, pipeline);
  json::Value value = model::toJson(result.unique_deps);
  return json::writePretty(value);
}

TEST(PipelineDeterminism, SerialAndParallelTable5AreByteIdentical) {
  const PipelineOptions serial{.jobs = 1, .use_cache = true};
  const PipelineOptions parallel{.jobs = 4, .use_cache = true};

  const std::string reference = table5Json(serial);
  ASSERT_FALSE(reference.empty());

  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(table5Json(serial), reference) << "serial run " << run;
    EXPECT_EQ(table5Json(parallel), reference) << "parallel run " << run;
  }
}

TEST(PipelineDeterminism, InterProceduralSerialAndParallelAreByteIdentical) {
  // The SCC-summary engine must be just as schedule-independent as the
  // intra engine: per-component analyses race on the pool, but the
  // summary construction inside each analyzer is single-threaded and
  // the extraction order is fixed.
  taint::AnalysisOptions inter;
  inter.inter_procedural = true;
  const PipelineOptions serial{.jobs = 1, .use_cache = true};
  const PipelineOptions parallel{.jobs = 4, .use_cache = true};

  const std::string reference = table5Json(serial, inter);
  ASSERT_FALSE(reference.empty());

  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(table5Json(serial, inter), reference) << "serial run " << run;
    EXPECT_EQ(table5Json(parallel, inter), reference) << "parallel run " << run;
  }
}

TEST(PipelineDeterminism, CachedAndUncachedPipelinesAgree) {
  const PipelineOptions cached{.jobs = 1, .use_cache = true};
  const PipelineOptions uncached{.jobs = 1, .use_cache = false};  // the seed's exact behavior
  EXPECT_EQ(table5Json(cached), table5Json(uncached));
}

TEST(PipelineDeterminism, FormattedTableMatchesAcrossModes) {
  const Table5Result serial = runTable5({}, nullptr, {.jobs = 1, .use_cache = true});
  const Table5Result parallel = runTable5({}, nullptr, {.jobs = 4, .use_cache = true});
  EXPECT_EQ(formatTable5(serial), formatTable5(parallel));
  ASSERT_EQ(serial.per_scenario.size(), parallel.per_scenario.size());
  for (std::size_t i = 0; i < serial.per_scenario.size(); ++i) {
    EXPECT_EQ(serial.per_scenario[i].deps.size(), parallel.per_scenario[i].deps.size());
    EXPECT_EQ(serial.per_scenario[i].score.totalExtracted(),
              parallel.per_scenario[i].score.totalExtracted());
    EXPECT_EQ(serial.per_scenario[i].score.totalFalsePositives(),
              parallel.per_scenario[i].score.totalFalsePositives());
  }
}

TEST(PipelineDeterminism, ScenarioRunsAreIdenticalAcrossJobCounts) {
  const auto scenario_list = scenarios();
  for (const Scenario& s : scenario_list) {
    const auto serial = runScenario(s, {}, nullptr, {.jobs = 1});
    const auto parallel = runScenario(s, {}, nullptr, {.jobs = 4});
    json::Value a = model::toJson(serial);
    json::Value b = model::toJson(parallel);
    EXPECT_EQ(json::writePretty(a), json::writePretty(b)) << "scenario " << s.id;
  }
}

TEST(PipelineStatsApi, CountersAccumulateAndReset) {
  resetPipelineStats();
  (void)runTable5({}, nullptr, {.jobs = 2});
  const PipelineStats stats = pipelineStatsSnapshot();
  EXPECT_GT(stats.analyze_ns, 0u);
  EXPECT_GT(stats.components_analyzed, 0u);
  EXPECT_GT(stats.merge_calls, 0u);
  EXPECT_GE(stats.merge_calls, stats.merge_grew);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_FALSE(stats.format().empty());

  resetPipelineStats();
  const PipelineStats zeroed = pipelineStatsSnapshot();
  EXPECT_EQ(zeroed.analyze_ns, 0u);
  EXPECT_EQ(zeroed.components_analyzed, 0u);
  EXPECT_EQ(zeroed.merge_calls, 0u);
}

}  // namespace
}  // namespace fsdep::corpus
