// Integration tests over the embedded corpus: the frontend must digest
// every component cleanly and the full pipeline must reproduce the
// paper's Table 5 cell by cell.
#include <gtest/gtest.h>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

TEST(Corpus, AllComponentsParseAndResolve) {
  for (const std::string& name : componentNames()) {
    EXPECT_NO_THROW({
      AnalyzedComponent component(name, taint::AnalysisOptions{});
      EXPECT_GT(component.tu().decls.size(), 0u) << name;
    }) << name;
  }
}

TEST(Corpus, HeadersResolve) {
  EXPECT_TRUE(headerSource("ext4_fs.h").has_value());
  EXPECT_TRUE(headerSource("fsdep_libc.h").has_value());
  EXPECT_FALSE(headerSource("nonsense.h").has_value());
}

TEST(Corpus, ScenarioSelectionsNameRealFunctions) {
  for (const Scenario& scenario : scenarios()) {
    for (const auto& [component, functions] : scenario.selection) {
      AnalyzedComponent analyzed(component, taint::AnalysisOptions{});
      for (const std::string& fn : functions) {
        const ast::FunctionDecl* decl = analyzed.tu().findFunction(fn);
        ASSERT_NE(decl, nullptr) << scenario.id << ": " << component << "::" << fn;
        EXPECT_TRUE(decl->isDefinition()) << scenario.id << ": " << component << "::" << fn;
      }
    }
  }
}

TEST(Corpus, SeedsNameRealVariables) {
  for (const std::string& name : componentNames()) {
    AnalyzedComponent analyzed(name, taint::AnalysisOptions{});
    analyzed.analyze({});  // all functions, so every seed can bind
    for (const taint::Seed& seed : componentSeeds(name)) {
      const ast::FunctionDecl* fn = analyzed.tu().findFunction(seed.function);
      ASSERT_NE(fn, nullptr) << name << ": seed function " << seed.function;
    }
  }
}

TEST(Corpus, GroundTruthHasSixtyFourEntries) {
  const auto& gt = groundTruth();
  EXPECT_EQ(gt.size(), 64u);
  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  for (const extract::GroundTruthEntry& e : gt) {
    switch (e.dep.level()) {
      case model::DepLevel::SelfDependency: ++sd; break;
      case model::DepLevel::CrossParameter: ++cpd; break;
      case model::DepLevel::CrossComponent: ++ccd; break;
    }
  }
  EXPECT_EQ(sd, 32);
  EXPECT_EQ(cpd, 26);
  EXPECT_EQ(ccd, 6);
}

TEST(Corpus, GroundTruthKeysAreUnique) {
  std::set<std::string> keys;
  for (const extract::GroundTruthEntry& e : groundTruth()) {
    EXPECT_TRUE(keys.insert(e.dep.dedupKey()).second) << e.dep.dedupKey();
  }
}

// --- The headline experiment: Table 5, cell by cell. ---

class Table5Fixture : public ::testing::Test {
 protected:
  static const Table5Result& result() {
    static const Table5Result kResult = runTable5();
    return kResult;
  }
};

TEST_F(Table5Fixture, ScenarioOne) {
  const ScenarioResult& s1 = result().per_scenario.at(0);
  EXPECT_EQ(s1.score.sd.extracted, 31);
  EXPECT_EQ(s1.score.sd.false_positives, 0);
  EXPECT_EQ(s1.score.cpd.extracted, 24);
  EXPECT_EQ(s1.score.cpd.false_positives, 1);
  EXPECT_EQ(s1.score.ccd.extracted, 0);
}

TEST_F(Table5Fixture, ScenarioTwo) {
  const ScenarioResult& s2 = result().per_scenario.at(1);
  EXPECT_EQ(s2.score.sd.extracted, 31);
  EXPECT_EQ(s2.score.sd.false_positives, 0);
  EXPECT_EQ(s2.score.cpd.extracted, 24);
  EXPECT_EQ(s2.score.cpd.false_positives, 0);
  EXPECT_EQ(s2.score.ccd.extracted, 0);
}

TEST_F(Table5Fixture, ScenarioThree) {
  const ScenarioResult& s3 = result().per_scenario.at(2);
  EXPECT_EQ(s3.score.sd.extracted, 32);
  EXPECT_EQ(s3.score.sd.false_positives, 3);
  EXPECT_EQ(s3.score.cpd.extracted, 26);
  EXPECT_EQ(s3.score.cpd.false_positives, 0);
  EXPECT_EQ(s3.score.ccd.extracted, 6);
  EXPECT_EQ(s3.score.ccd.false_positives, 1);
}

TEST_F(Table5Fixture, ScenarioFour) {
  const ScenarioResult& s4 = result().per_scenario.at(3);
  EXPECT_EQ(s4.score.sd.extracted, 32);
  EXPECT_EQ(s4.score.sd.false_positives, 0);
  EXPECT_EQ(s4.score.cpd.extracted, 26);
  EXPECT_EQ(s4.score.cpd.false_positives, 0);
  EXPECT_EQ(s4.score.ccd.extracted, 0);
}

TEST_F(Table5Fixture, TotalUniqueRow) {
  const extract::ScenarioScore& unique = result().unique_score;
  EXPECT_EQ(unique.sd.extracted, 32);
  EXPECT_EQ(unique.sd.false_positives, 3);
  EXPECT_EQ(unique.cpd.extracted, 26);
  EXPECT_EQ(unique.cpd.false_positives, 1);
  EXPECT_EQ(unique.ccd.extracted, 6);
  EXPECT_EQ(unique.ccd.false_positives, 1);
  EXPECT_EQ(unique.totalExtracted(), 64);
  EXPECT_EQ(unique.totalFalsePositives(), 5);
}

TEST_F(Table5Fixture, NoUnlabelledExtractions) {
  for (const ScenarioResult& sr : result().per_scenario) {
    EXPECT_TRUE(sr.score.unlabelled.empty()) << sr.id;
  }
}

TEST_F(Table5Fixture, NoFalseNegatives) {
  for (const ScenarioResult& sr : result().per_scenario) {
    EXPECT_TRUE(sr.score.false_negative_ids.empty())
        << sr.id << " first: "
        << (sr.score.false_negative_ids.empty() ? "" : sr.score.false_negative_ids[0]);
  }
}

TEST_F(Table5Fixture, HeadlineCcdsAreFound) {
  const ScenarioResult& s3 = result().per_scenario.at(2);
  bool found_figure1 = false;
  bool found_online_control = false;
  for (const model::Dependency& dep : s3.deps) {
    if (dep.other_param == "mke2fs.sparse_super2" && dep.kind == model::DepKind::CcdBehavioral) {
      found_figure1 = true;
    }
    if (dep.param == "resize2fs.online" && dep.kind == model::DepKind::CcdControl) {
      found_online_control = true;
    }
  }
  EXPECT_TRUE(found_figure1) << "the sparse_super2 resize dependency (Figure 1) must extract";
  EXPECT_TRUE(found_online_control);
}

TEST_F(Table5Fixture, ExtractionIsDeterministic) {
  const Table5Result second = runTable5();
  ASSERT_EQ(second.per_scenario.size(), result().per_scenario.size());
  for (std::size_t i = 0; i < second.per_scenario.size(); ++i) {
    ASSERT_EQ(second.per_scenario[i].deps.size(), result().per_scenario[i].deps.size());
    for (std::size_t j = 0; j < second.per_scenario[i].deps.size(); ++j) {
      EXPECT_EQ(second.per_scenario[i].deps[j].dedupKey(),
                result().per_scenario[i].deps[j].dedupKey());
    }
  }
}

TEST(CorpusAblation, NoBridgingMeansNoCcd) {
  extract::ExtractOptions options = extractOptions();
  options.enable_bridging = false;
  taint::AnalysisOptions topts;
  topts.field_bridging = false;
  for (const Scenario& scenario : scenarios()) {
    const auto deps = runScenario(scenario, topts, &options);
    for (const model::Dependency& dep : deps) {
      EXPECT_NE(dep.level(), model::DepLevel::CrossComponent)
          << scenario.id << ": " << dep.summary();
    }
  }
}

TEST(CorpusAblation, InterProceduralFindsAtLeastAsManyCcds) {
  // Paper §6: inter-procedural analysis should recover additional CCDs
  // (the accessor-shielded feature reads).
  taint::AnalysisOptions intra;
  taint::AnalysisOptions inter;
  inter.inter_procedural = true;

  // Analyze every function so the accessors get summaries.
  auto count_ccd = [&](const taint::AnalysisOptions& topts) {
    std::vector<std::string> all;  // empty selection = all functions
    std::vector<extract::ComponentRun> runs;
    std::vector<std::unique_ptr<AnalyzedComponent>> components;
    for (const std::string& name : componentNames()) {
      auto c = std::make_unique<AnalyzedComponent>(name, topts);
      c->analyze({});
      components.push_back(std::move(c));
      runs.push_back(components.back()->asRun());
    }
    const auto deps = extract::extractDependencies(runs, extractOptions());
    int ccd = 0;
    for (const model::Dependency& d : deps) {
      ccd += d.level() == model::DepLevel::CrossComponent ? 1 : 0;
    }
    return ccd;
  };

  const int intra_ccd = count_ccd(intra);
  const int inter_ccd = count_ccd(inter);
  EXPECT_GE(inter_ccd, intra_ccd);
  EXPECT_GT(inter_ccd, 0);
}

TEST(CorpusData, EcosystemTotalsMatchTable2Premises) {
  const model::Ecosystem& eco = ecosystem();
  std::size_t fs_side = 0;
  for (const char* name : {"mke2fs", "mount", "ext4"}) {
    ASSERT_NE(eco.findComponent(name), nullptr);
    fs_side += eco.findComponent(name)->parameters.size();
  }
  EXPECT_GT(fs_side, 85u);
  EXPECT_GT(eco.findComponent("e2fsck")->parameters.size(), 35u);
  EXPECT_GT(eco.findComponent("resize2fs")->parameters.size(), 15u);
}

TEST(CorpusData, ManualsReferenceOnlyKnownParameters) {
  const model::Ecosystem& eco = ecosystem();
  for (const ManualEntry& entry : allManuals()) {
    if (entry.claim.param.starts_with("ext4.")) continue;  // persistent fields
    if (entry.claim.param.find(".resize2fs_") != std::string::npos) {
      continue;  // pseudo anchors name a behaviour (component.function)
    }
    EXPECT_NE(eco.findParameter(entry.claim.param), nullptr) << entry.claim.param;
  }
}

TEST(CorpusStructure, ComponentsDefineTheExpectedFunctions) {
  const std::map<std::string, std::vector<std::string>> expected = {
      {"mke2fs", {"blocksize_to_log", "mke2fs_write_super", "mke2fs_main"}},
      {"mount", {"mount_opt_value", "mount_main", "do_mount_syscall"}},
      {"ext4",
       {"ext4_check_magic", "ext4_has_feature_extents", "ext4_parse_options",
        "ext4_fill_super", "ext4_check_descriptors", "ext4_setup_super", "ext4_remount",
        "ext4_online_defrag_check", "ext4_validate_super_offline"}},
      {"e4defrag", {"defrag_check_fs", "e4defrag_main"}},
      {"resize2fs",
       {"resize2fs_main", "resize2fs_check_geometry", "resize2fs_adjust_last_group",
        "resize2fs_print_summary"}},
      {"e2fsck", {"e2fsck_check_super", "e2fsck_main"}},
  };
  for (const auto& [component, functions] : expected) {
    AnalyzedComponent analyzed(component, taint::AnalysisOptions{});
    for (const std::string& fn : functions) {
      const ast::FunctionDecl* decl = analyzed.tu().findFunction(fn);
      ASSERT_NE(decl, nullptr) << component << "::" << fn;
      EXPECT_TRUE(decl->isDefinition()) << component << "::" << fn;
    }
  }
}

TEST(CorpusStructure, SharedSuperblockHasTheBridgeFields) {
  AnalyzedComponent mke2fs("mke2fs", taint::AnalysisOptions{});
  const ast::RecordDecl* sb = nullptr;
  for (const auto& d : mke2fs.tu().decls) {
    if (d->kind() == ast::DeclKind::Record && d->name == "ext4_super_block") {
      sb = static_cast<const ast::RecordDecl*>(d.get());
    }
  }
  ASSERT_NE(sb, nullptr);
  for (const char* field : {"s_blocks_count", "s_log_block_size", "s_feature_compat",
                            "s_r_blocks_count", "s_volume_name", "s_error_count"}) {
    EXPECT_NE(sb->findField(field), nullptr) << field;
  }
}

}  // namespace
}  // namespace fsdep::corpus
