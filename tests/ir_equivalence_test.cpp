// The compiled Taint-IR interpreter is the default engine; the AST
// statement walk (AnalysisOptions::compile_ir = false, --legacy-walk) is
// kept as the oracle. The two must be observationally identical on the
// seed corpus and on an amplified corpus, intra- and inter-procedural:
// same interned label ids (id order is semantic — rendered sets ascend
// by id and extraction anchors on the smallest id), same write events,
// same field-write bridges, same per-function return labels, same
// first-discovery traces, the same statement-visit counts, and
// byte-identical extracted dependencies at any worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/amplify.h"
#include "corpus/pipeline.h"
#include "json/json.h"
#include "model/serialization.h"
#include "taint/label.h"

namespace fsdep::corpus {
namespace {

taint::AnalysisOptions irOpts(bool inter) {
  taint::AnalysisOptions options;
  options.inter_procedural = inter;
  options.compile_ir = true;
  return options;
}

taint::AnalysisOptions walkOpts(bool inter) {
  taint::AnalysisOptions options = irOpts(inter);
  options.compile_ir = false;
  return options;
}

std::vector<std::string> allComponents() {
  std::vector<std::string> names = componentNames();
  for (const std::string& n : xfsComponentNames()) names.push_back(n);
  for (const std::string& n : btrfsComponentNames()) names.push_back(n);
  return names;
}

void expectAnalyzersIdentical(const taint::Analyzer& a, const taint::Analyzer& b,
                              const std::string& name) {
  ASSERT_EQ(a.labels().size(), b.labels().size()) << name;
  for (taint::LabelId id = 0; id < a.labels().size(); ++id) {
    EXPECT_EQ(a.labels().name(id), b.labels().name(id)) << name << " label " << id;
  }

  const auto fields_a = a.fieldWrites();
  const auto fields_b = b.fieldWrites();
  ASSERT_EQ(fields_a.size(), fields_b.size()) << name;
  for (const auto& [key, labels] : fields_a) {
    const auto it = fields_b.find(key);
    ASSERT_NE(it, fields_b.end()) << name << " field " << key;
    EXPECT_EQ(labelSetToString(a.labels(), labels), labelSetToString(b.labels(), it->second))
        << name << " field " << key;
  }

  const auto writes_a = a.writeEvents();
  const auto writes_b = b.writeEvents();
  ASSERT_EQ(writes_a.size(), writes_b.size()) << name;
  for (std::size_t i = 0; i < writes_a.size(); ++i) {
    EXPECT_EQ(writes_a[i]->object, writes_b[i]->object) << name;
    EXPECT_EQ(writes_a[i]->loc.line, writes_b[i]->loc.line) << name;
    EXPECT_EQ(writes_a[i]->loc.column, writes_b[i]->loc.column) << name;
    EXPECT_EQ(writes_a[i]->op, writes_b[i]->op) << name;
    EXPECT_EQ(writes_a[i]->rhs_callee, writes_b[i]->rhs_callee) << name;
    EXPECT_EQ(labelSetToString(a.labels(), writes_a[i]->labels),
              labelSetToString(b.labels(), writes_b[i]->labels))
        << name << " write to " << writes_a[i]->object;
  }

  ASSERT_EQ(a.results().size(), b.results().size()) << name;
  for (std::size_t i = 0; i < a.results().size(); ++i) {
    const taint::FunctionTaint& ra = *a.results()[i];
    const taint::FunctionTaint& rb = *b.results()[i];
    ASSERT_EQ(ra.fn->name, rb.fn->name) << name;
    EXPECT_EQ(labelSetToString(a.labels(), ra.return_labels),
              labelSetToString(b.labels(), rb.return_labels))
        << name << "." << ra.fn->name << " returns";
  }

  // Traces are first-discovery ordered and capped; both engines must
  // discover the same steps in the same order.
  for (const taint::WriteEvent* w : writes_a) {
    const auto* trace_a = a.traceFor(w->object);
    const auto* trace_b = b.traceFor(w->object);
    ASSERT_NE(trace_a, nullptr) << name << " " << w->object;
    ASSERT_NE(trace_b, nullptr) << name << " " << w->object;
    ASSERT_EQ(trace_a->size(), trace_b->size()) << name << " " << w->object;
    for (std::size_t i = 0; i < trace_a->size(); ++i) {
      EXPECT_EQ((*trace_a)[i].text, (*trace_b)[i].text) << name << " " << w->object;
      EXPECT_EQ((*trace_a)[i].loc.line, (*trace_b)[i].loc.line) << name << " " << w->object;
    }
  }

  // The IR mirrors the per-block statement totals into the same visit
  // counter the AST walk increments per statement, and the final-pass
  // skip fires identically (it is decided on engine-independent state).
  EXPECT_EQ(a.stmtVisits(), b.stmtVisits()) << name;
  EXPECT_EQ(a.concreteSkips(), b.concreteSkips()) << name;
  EXPECT_GT(a.irInstrs(), 0u) << name;
  EXPECT_EQ(b.irInstrs(), 0u) << name;
}

TEST(IrEquivalence, Table5ByteIdentical) {
  const Table5Result ir = runTable5(irOpts(true), nullptr, {.jobs = 1});
  const Table5Result walk = runTable5(walkOpts(true), nullptr, {.jobs = 1});
  EXPECT_EQ(json::writePretty(model::toJson(ir.unique_deps)),
            json::writePretty(model::toJson(walk.unique_deps)));
  EXPECT_EQ(formatTable5(ir), formatTable5(walk));
}

TEST(IrEquivalence, PerScenarioDependenciesByteIdentical) {
  for (const bool inter : {false, true}) {
    for (const Scenario& s : scenarios()) {
      const std::vector<model::Dependency> ir = runScenario(s, irOpts(inter), nullptr, {.jobs = 1});
      const std::vector<model::Dependency> walk =
          runScenario(s, walkOpts(inter), nullptr, {.jobs = 1});
      EXPECT_EQ(json::writePretty(model::toJson(ir)), json::writePretty(model::toJson(walk)))
          << "scenario " << s.id << (inter ? " inter" : " intra");
    }
  }
}

// All-functions mode (no pre-selection) over every component of all
// three seed ecosystems, in both taint modes.
TEST(IrEquivalence, WholeComponentAnalyzerStateIdentical) {
  for (const bool inter : {false, true}) {
    for (const std::string& name : allComponents()) {
      AnalyzedComponent ir(name, irOpts(inter));
      ir.analyze({});
      AnalyzedComponent walk(name, walkOpts(inter));
      walk.analyze({});
      expectAnalyzersIdentical(ir.analyzer(), walk.analyzer(),
                               name + (inter ? " inter" : " intra"));
    }
  }
}

// The amplified corpus stresses what the seed cannot: hundreds of
// generated functions per ecosystem flowing through the SCC-summary
// engine (and its symbolic sweeps) over compiled IR.
TEST(IrEquivalence, AmplifiedCorpusByteIdentical) {
  const std::vector<std::string> names = amplifyCorpus({.factor = 50, .seed = 42});
  for (const bool inter : {false, true}) {
    for (const std::string& name : names) {
      AnalyzedComponent ir(name, irOpts(inter));
      ir.analyze({});
      AnalyzedComponent walk(name, walkOpts(inter));
      walk.analyze({});
      expectAnalyzersIdentical(ir.analyzer(), walk.analyzer(),
                               name + (inter ? " inter" : " intra"));
    }
  }
}

// The compiled programs live in a shared per-component cache that pool
// workers hit concurrently; results must not depend on the worker count
// or on which run compiled the streams (serial ≡ parallel, ×3).
TEST(IrEquivalence, SerialEqualsParallelTimesThree) {
  const Table5Result serial = runTable5(irOpts(true), nullptr, {.jobs = 1});
  const std::string expected = formatTable5(serial);
  const std::string expected_deps = json::writePretty(model::toJson(serial.unique_deps));
  for (int round = 0; round < 3; ++round) {
    const Table5Result parallel = runTable5(irOpts(true), nullptr, {.jobs = 4});
    EXPECT_EQ(formatTable5(parallel), expected) << "round " << round;
    EXPECT_EQ(json::writePretty(model::toJson(parallel.unique_deps)), expected_deps)
        << "round " << round;
  }
}

}  // namespace
}  // namespace fsdep::corpus
