#include <gtest/gtest.h>

#include <map>

#include "lex/preprocessor.h"

namespace fsdep::lex {
namespace {

struct PpResult {
  std::vector<Token> tokens;
  bool had_errors = false;
};

PpResult preprocess(const std::string& main_text,
                    const std::map<std::string, std::string>& headers = {}) {
  static SourceManager sm;
  DiagnosticEngine diags;
  const FileId file = sm.addBuffer("main.c", main_text);
  Preprocessor pp(sm, diags, [headers](std::string_view name) -> std::optional<std::string> {
    const auto it = headers.find(std::string(name));
    if (it == headers.end()) return std::nullopt;
    return it->second;
  });
  PpResult result;
  result.tokens = pp.tokenize(file);
  result.had_errors = diags.hasErrors();
  return result;
}

std::string spelling(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t.kind == TokenKind::IntLiteral ? std::to_string(t.int_value) : t.text;
  }
  return out;
}

TEST(Preprocessor, ObjectMacroExpansion) {
  const auto r = preprocess("#define MAX 4096\nint x = MAX;");
  EXPECT_FALSE(r.had_errors);
  EXPECT_EQ(spelling(r.tokens), "int x = 4096 ;");
}

TEST(Preprocessor, MacroExpandsToExpression) {
  const auto r = preprocess("#define LIMIT (1024 * 8)\nint x = LIMIT;");
  EXPECT_EQ(spelling(r.tokens), "int x = ( 1024 * 8 ) ;");
}

TEST(Preprocessor, NestedMacros) {
  const auto r = preprocess("#define A B\n#define B 7\nint x = A;");
  EXPECT_EQ(spelling(r.tokens), "int x = 7 ;");
}

TEST(Preprocessor, SelfReferentialMacroDoesNotLoop) {
  const auto r = preprocess("#define X X\nint X;");
  EXPECT_EQ(spelling(r.tokens), "int X ;");
}

TEST(Preprocessor, Undef) {
  const auto r = preprocess("#define N 1\n#undef N\nint N;");
  EXPECT_EQ(spelling(r.tokens), "int N ;");
}

TEST(Preprocessor, IfdefTrueBranch) {
  const auto r = preprocess("#define FEATURE 1\n#ifdef FEATURE\nint yes;\n#else\nint no;\n#endif");
  EXPECT_EQ(spelling(r.tokens), "int yes ;");
}

TEST(Preprocessor, IfndefWithElse) {
  const auto r = preprocess("#ifndef MISSING\nint a;\n#else\nint b;\n#endif");
  EXPECT_EQ(spelling(r.tokens), "int a ;");
}

TEST(Preprocessor, NestedConditionals) {
  const auto r = preprocess(
      "#define OUTER 1\n"
      "#ifdef OUTER\n"
      "#ifdef INNER\nint both;\n#else\nint outer_only;\n#endif\n"
      "#endif");
  EXPECT_EQ(spelling(r.tokens), "int outer_only ;");
}

TEST(Preprocessor, DefinesInsideInactiveBlocksAreIgnored) {
  const auto r = preprocess("#ifdef NOPE\n#define HIDDEN 9\n#endif\nint x = HIDDEN;");
  EXPECT_EQ(spelling(r.tokens), "int x = HIDDEN ;");
}

TEST(Preprocessor, IncludeSplicesTokens) {
  const auto r = preprocess("#include \"defs.h\"\nint x = VALUE;",
                            {{"defs.h", "#define VALUE 3\nint from_header;\n"}});
  EXPECT_FALSE(r.had_errors);
  EXPECT_EQ(spelling(r.tokens), "int from_header ; int x = 3 ;");
}

TEST(Preprocessor, IncludeIsIdempotent) {
  const auto r = preprocess("#include \"h.h\"\n#include \"h.h\"\nint x;",
                            {{"h.h", "int once;\n"}});
  EXPECT_EQ(spelling(r.tokens), "int once ; int x ;");
}

TEST(Preprocessor, HeaderGuardStyleWorks) {
  const std::string guarded = "#ifndef H_H\n#define H_H\nint guarded;\n#endif\n";
  const auto r = preprocess("#include \"g.h\"\nint tail;", {{"g.h", guarded}});
  EXPECT_FALSE(r.had_errors);
  EXPECT_EQ(spelling(r.tokens), "int guarded ; int tail ;");
}

TEST(Preprocessor, MissingIncludeIsAnError) {
  const auto r = preprocess("#include \"nowhere.h\"\nint x;");
  EXPECT_TRUE(r.had_errors);
  EXPECT_EQ(spelling(r.tokens), "int x ;");
}

TEST(Preprocessor, UnterminatedIfdefIsAnError) {
  const auto r = preprocess("#ifdef X\nint x;");
  EXPECT_TRUE(r.had_errors);
}

TEST(Preprocessor, UnbalancedEndifIsAnError) {
  const auto r = preprocess("#endif\nint x;");
  EXPECT_TRUE(r.had_errors);
}

TEST(Preprocessor, PredefinedMacros) {
  static SourceManager sm;
  DiagnosticEngine diags;
  const FileId file = sm.addBuffer("m.c", "int x = CONFIGURED;");
  Preprocessor pp(sm, diags, nullptr);
  pp.defineMacro("CONFIGURED", "123");
  const auto tokens = pp.tokenize(file);
  EXPECT_EQ(spelling(tokens), "int x = 123 ;");
  EXPECT_TRUE(pp.isMacroDefined("CONFIGURED"));
}

TEST(Preprocessor, PragmaIsIgnored) {
  const auto r = preprocess("#pragma once\nint x;");
  EXPECT_FALSE(r.had_errors);
  EXPECT_EQ(spelling(r.tokens), "int x ;");
}

TEST(Preprocessor, HashInsideLineIsNotADirective) {
  // '#' mid-line lexes as a Hash token but must not be treated as a
  // directive.
  const auto r = preprocess("int a; # define_not_really\nint b;");
  EXPECT_EQ(spelling(r.tokens), "int a ; # define_not_really int b ;");
}

}  // namespace
}  // namespace fsdep::lex
