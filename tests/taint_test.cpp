#include <gtest/gtest.h>

#include "ast/parser.h"
#include "lex/lexer.h"
#include "sema/sema.h"
#include "taint/analyzer.h"

namespace fsdep::taint {
namespace {

using namespace ast;

struct Setup {
  std::unique_ptr<TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::unique_ptr<Analyzer> analyzer;
};

Setup analyze(const std::string& text, const std::vector<Seed>& seeds,
              AnalysisOptions options = {}) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer("t.c", text);
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  Setup s;
  s.tu = parser.parseTranslationUnit("t.c");
  EXPECT_FALSE(diags.hasErrors()) << diags.render(sm);
  s.sema = std::make_unique<sema::Sema>(*s.tu, diags);
  s.sema->run();
  s.analyzer = std::make_unique<Analyzer>(*s.tu, *s.sema, options);
  for (const Seed& seed : seeds) s.analyzer->addSeed(seed);
  s.analyzer->run();
  return s;
}

/// Labels of variable `name` at function exit (last block's entry state,
/// conservative but deterministic for straight-line code).
std::set<std::string> exitLabels(const Setup& s, const std::string& fn_name,
                                 const std::string& var_name) {
  const FunctionTaint* ft = s.analyzer->resultFor(fn_name);
  EXPECT_NE(ft, nullptr);
  std::set<std::string> out;
  auto collect = [&](const TaintState& state) {
    for (const auto& [var, labels] : state.vars) {
      if (var->name != var_name) continue;
      for (const LabelId id : labels) out.insert(s.analyzer->labels().name(id));
    }
  };
  collect(ft->exit_state);
  for (const TaintState& state : ft->block_entry) collect(state);
  return out;
}

TEST(Taint, SeedSticksToVariable) {
  const auto s = analyze(
      "void f(void) { long blocksize = 0; blocksize = 4096; long done = blocksize; }",
      {{"f", "blocksize", "mke2fs.blocksize"}});
  const auto labels = exitLabels(s, "f", "done");
  EXPECT_TRUE(labels.contains("param:mke2fs.blocksize"))
      << "sticky seed must survive a constant overwrite";
}

TEST(Taint, PropagatesThroughArithmetic) {
  const auto s = analyze(
      "void f(void) { long size = 0; long blocks = size / 1024 + 7; }",
      {{"f", "size", "tool.size"}});
  EXPECT_TRUE(exitLabels(s, "f", "blocks").contains("param:tool.size"));
}

TEST(Taint, NoFalsePropagation) {
  const auto s = analyze(
      "void f(void) { long tainted = 0; long clean = 5 * 3; }",
      {{"f", "tainted", "tool.x"}});
  EXPECT_TRUE(exitLabels(s, "f", "clean").empty());
}

TEST(Taint, CallArgumentsTaintResultIntraMode) {
  const auto s = analyze(
      "long helper(long v);\n"
      "void f(void) { long p = 0; long out = helper(p); }",
      {{"f", "p", "tool.p"}});
  EXPECT_TRUE(exitLabels(s, "f", "out").contains("param:tool.p"));
}

TEST(Taint, OutParameterPropagation) {
  const auto s = analyze(
      "void parse(long *dst, long src);\n"
      "void f(void) { long p = 0; long result = 0; parse(&result, p); }",
      {{"f", "p", "tool.p"}});
  EXPECT_TRUE(exitLabels(s, "f", "result").contains("param:tool.p"));
}

TEST(Taint, ConditionalCarriesConditionLabels) {
  // The controlled implicit flow: `flag ? MASK : 0` must carry the
  // flag's label (feature-bitmap idiom).
  const auto s = analyze(
      "void f(void) { int flag = 0; long mask = flag ? 16 : 0; }",
      {{"f", "flag", "tool.flag"}});
  EXPECT_TRUE(exitLabels(s, "f", "mask").contains("param:tool.flag"));
}

TEST(Taint, FieldWritesAreRecorded) {
  const auto s = analyze(
      "struct sb { unsigned int blocks; };\n"
      "void f(struct sb *s) { long size = 0; s->blocks = size; }",
      {{"f", "size", "mke2fs.size"}});
  const auto& writes = s.analyzer->fieldWrites();
  const auto it = writes.find("sb.blocks");
  ASSERT_NE(it, writes.end());
  std::set<std::string> names;
  for (const LabelId id : it->second) names.insert(s.analyzer->labels().name(id));
  EXPECT_TRUE(names.contains("param:mke2fs.size"));
}

TEST(Taint, FieldReadsCarryBridgeLabel) {
  const auto s = analyze(
      "struct sb { unsigned int blocks; };\n"
      "void f(struct sb *s) { long copy = s->blocks; }",
      {});
  EXPECT_TRUE(exitLabels(s, "f", "copy").contains("field:sb.blocks"));
}

TEST(Taint, FieldBridgingCanBeDisabled) {
  AnalysisOptions options;
  options.field_bridging = false;
  const auto s = analyze(
      "struct sb { unsigned int blocks; };\n"
      "void f(struct sb *s) { long copy = s->blocks; }",
      {}, options);
  EXPECT_TRUE(exitLabels(s, "f", "copy").empty());
}

TEST(Taint, CompoundOrAssignEventKeepsOnlyRhsLabels) {
  const auto s = analyze(
      "struct sb { unsigned int compat; };\n"
      "void f(struct sb *s) {\n"
      "  int a = 0; int b = 0;\n"
      "  s->compat |= (a ? 4 : 0);\n"
      "  s->compat |= (b ? 16 : 0);\n"
      "}",
      {{"f", "a", "tool.a"}, {"f", "b", "tool.b"}});
  // The second event must carry only b's label, not a's (no smearing
  // through the old field value).
  bool found_b_event = false;
  for (const WriteEvent* e : s.analyzer->writeEvents()) {
    if (!e->is_field) continue;
    std::set<std::string> names;
    for (const LabelId id : e->labels) names.insert(s.analyzer->labels().name(id));
    if (names.contains("param:tool.b")) {
      found_b_event = true;
      EXPECT_FALSE(names.contains("param:tool.a"));
    }
  }
  EXPECT_TRUE(found_b_event);
}

TEST(Taint, BranchMergeUnionsStates) {
  const auto s = analyze(
      "void f(int which) {\n"
      "  long a = 0; long b = 0; long out = 0;\n"
      "  if (which) { out = a; } else { out = b; }\n"
      "  long sink = out;\n"
      "}",
      {{"f", "a", "tool.a"}, {"f", "b", "tool.b"}});
  const auto labels = exitLabels(s, "f", "sink");
  EXPECT_TRUE(labels.contains("param:tool.a"));
  EXPECT_TRUE(labels.contains("param:tool.b"));
}

TEST(Taint, LoopReachesFixpoint) {
  const auto s = analyze(
      "void f(void) {\n"
      "  long seedv = 0; long acc = 0;\n"
      "  for (int i = 0; i < 4; i = i + 1) { acc = acc + seedv; }\n"
      "  long sink = acc;\n"
      "}",
      {{"f", "seedv", "tool.s"}});
  EXPECT_TRUE(exitLabels(s, "f", "sink").contains("param:tool.s"));
}

TEST(Taint, ReturnLabels) {
  const auto s = analyze("long f(void) { long p = 0; return p + 1; }",
                         {{"f", "p", "tool.p"}});
  const FunctionTaint* ft = s.analyzer->resultFor("f");
  ASSERT_NE(ft, nullptr);
  std::set<std::string> names;
  for (const LabelId id : ft->return_labels) names.insert(s.analyzer->labels().name(id));
  EXPECT_TRUE(names.contains("param:tool.p"));
}

TEST(Taint, InterProceduralReturnFlow) {
  const std::string code =
      "long helper(long v) { return v * 2; }\n"
      "void f(void) { long p = 0; long out = helper(p); }";
  // Intra mode already unions arg labels; the stronger check is that a
  // field read inside the callee surfaces only in inter mode.
  const std::string code2 =
      "struct sb { unsigned int blocks; };\n"
      "long read_blocks(struct sb *s) { return s->blocks; }\n"
      "void f(struct sb *s) { long out = read_blocks(s); }";
  {
    const auto s = analyze(code2, {});
    EXPECT_FALSE(exitLabels(s, "f", "out").contains("field:sb.blocks"))
        << "intra mode must not see through the accessor";
  }
  {
    AnalysisOptions options;
    options.inter_procedural = true;
    const auto s = analyze(code2, {}, options);
    EXPECT_TRUE(exitLabels(s, "f", "out").contains("field:sb.blocks"))
        << "inter mode must propagate the accessor's field read";
  }
  (void)code;
}

TEST(Taint, InterProceduralParameterBinding) {
  AnalysisOptions options;
  options.inter_procedural = true;
  const auto s = analyze(
      "struct sb { unsigned int blocks; };\n"
      "void store(struct sb *s, long value) { s->blocks = value; }\n"
      "void f(struct sb *s) { long size = 0; store(s, size); }",
      {{"f", "size", "mke2fs.size"}}, options);
  const auto& writes = s.analyzer->fieldWrites();
  const auto it = writes.find("sb.blocks");
  ASSERT_NE(it, writes.end());
  std::set<std::string> names;
  for (const LabelId id : it->second) names.insert(s.analyzer->labels().name(id));
  EXPECT_TRUE(names.contains("param:mke2fs.size"))
      << "argument labels must bind to callee parameters in inter mode";
}

TEST(Taint, TracesRecordPropagationSteps) {
  const auto s = analyze(
      "void f(void) { long p = 0; long q = p + 1; long r = q * 2; }",
      {{"f", "p", "tool.p"}});
  const auto* trace_q = s.analyzer->traceFor("f.q");
  ASSERT_NE(trace_q, nullptr);
  ASSERT_FALSE(trace_q->empty());
  EXPECT_NE(trace_q->front().text.find("p + 1"), std::string::npos);
  const auto* trace_r = s.analyzer->traceFor("f.r");
  ASSERT_NE(trace_r, nullptr);
  EXPECT_NE(trace_r->front().text.find("q * 2"), std::string::npos);
}

TEST(Taint, SelectedFunctionsOnly) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer(
      "sel.c", "void a(void) { long x = 0; }\nvoid b(void) { long y = 0; }");
  lex::Lexer lexer(sm, file, diags);
  Parser parser(lexer.lexAll(), diags);
  auto tu = parser.parseTranslationUnit("sel.c");
  sema::Sema sema_obj(*tu, diags);
  sema_obj.run();
  Analyzer analyzer(*tu, sema_obj);
  analyzer.run({tu->findFunction("a")});
  EXPECT_NE(analyzer.resultFor("a"), nullptr);
  EXPECT_EQ(analyzer.resultFor("b"), nullptr);
}

TEST(Taint, SeedOnMissingVariableIsIgnored) {
  const auto s = analyze("void f(void) { long real_var = 0; }",
                         {{"f", "ghost", "tool.ghost"}, {"f", "real_var", "tool.real"}});
  const FunctionTaint* ft = s.analyzer->resultFor("f");
  ASSERT_NE(ft, nullptr);
  bool ghost_seen = false;
  for (const auto& [var, labels] : ft->exit_state.vars) {
    for (const LabelId id : labels) {
      ghost_seen |= s.analyzer->labels().name(id) == "param:tool.ghost";
    }
  }
  EXPECT_FALSE(ghost_seen);
  EXPECT_TRUE(exitLabels(s, "f", "real_var").contains("param:tool.real"));
}

TEST(Taint, SeedOnGlobalVariable) {
  const auto s = analyze(
      "long global_opt;\n"
      "void f(void) { long copy = global_opt; }",
      {{"f", "global_opt", "tool.global"}});
  EXPECT_TRUE(exitLabels(s, "f", "copy").contains("param:tool.global"));
}

TEST(Taint, RerunClearsPreviousState) {
  static SourceManager sm;
  static DiagnosticEngine diags;
  diags.clear();
  const FileId file = sm.addBuffer(
      "rerun.c", "void a(void) { long x = 0; long y = x; }\nvoid b(void) { long z = 1; }");
  lex::Lexer lexer(sm, file, diags);
  ast::Parser parser(lexer.lexAll(), diags);
  auto tu = parser.parseTranslationUnit("rerun.c");
  sema::Sema sema_obj(*tu, diags);
  sema_obj.run();
  Analyzer analyzer(*tu, sema_obj);
  analyzer.addSeed({"a", "x", "tool.x"});
  analyzer.run({tu->findFunction("a")});
  EXPECT_FALSE(analyzer.writeEvents().empty());
  analyzer.run({tu->findFunction("b")});
  EXPECT_EQ(analyzer.resultFor("a"), nullptr) << "results must reset per run";
  EXPECT_NE(analyzer.resultFor("b"), nullptr);
  EXPECT_TRUE(analyzer.writeEvents().empty()) << "write events must reset per run";
}

TEST(Taint, SwitchCaseAssignmentsPropagate) {
  const auto s = analyze(
      "void f(int c) {\n"
      "  long p = 0; long out = 0;\n"
      "  switch (c) {\n"
      "    case 1: out = p; break;\n"
      "    default: out = 0; break;\n"
      "  }\n"
      "  long sink = out;\n"
      "}",
      {{"f", "p", "tool.p"}});
  EXPECT_TRUE(exitLabels(s, "f", "sink").contains("param:tool.p"));
}

TEST(Taint, CastPreservesLabels) {
  const auto s = analyze(
      "typedef unsigned int u32;\n"
      "void f(void) { long p = 0; long out = (u32)p; }",
      {{"f", "p", "tool.p"}});
  EXPECT_TRUE(exitLabels(s, "f", "out").contains("param:tool.p"));
}

}  // namespace
}  // namespace fsdep::taint
