// ComponentCache behavior: parse-once semantics, concurrent first
// access, AnalysisOptions-keyed invalidation, error propagation.
#include "corpus/component_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

TEST(ComponentCache, ColdMissThenWarmHitsShareOneEntry) {
  ComponentCache cache;
  const taint::AnalysisOptions options;

  const auto first = cache.get("mke2fs", options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name, "mke2fs");
  ASSERT_NE(first->tu, nullptr);
  ASSERT_NE(first->sema, nullptr);
  EXPECT_FALSE(first->seeds.empty());

  const auto second = cache.get("mke2fs", options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get()) << "warm hit must reuse the parsed entry";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ComponentCache, ConcurrentFirstAccessParsesExactlyOnce) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  constexpr int kThreads = 8;

  std::vector<std::shared_ptr<const ComponentEntry>> entries(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &options, &entries, t] {
        entries[static_cast<std::size_t>(t)] = cache.get("resize2fs", options);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  EXPECT_EQ(cache.misses(), 1u) << "only the first requester may parse";
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& entry : entries) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), entries.front().get());
  }
}

TEST(ComponentCache, DifferentOptionsInvalidateTheEntry) {
  ComponentCache cache;
  taint::AnalysisOptions intra;
  taint::AnalysisOptions inter;
  inter.inter_procedural = true;

  const auto a = cache.get("mount", intra);
  const auto b = cache.get("mount", inter);  // options mismatch: rebuild
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u) << "one slot per component, keyed by name";

  // The slot now serves the new options; the old shared_ptr stays valid.
  const auto c = cache.get("mount", inter);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(b.get(), c.get());
  EXPECT_EQ(a->name, "mount");
}

TEST(ComponentCache, UnknownComponentThrowsForEveryRequester) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  EXPECT_THROW(cache.get("no-such-component", options), std::runtime_error);
  // The failure is cached in the slot's future; later requesters see the
  // same error (and a hit, not a re-parse attempt).
  EXPECT_THROW(cache.get("no-such-component", options), std::runtime_error);
}

TEST(ComponentCache, ClearDropsEntriesButKeepsOutstandingPointersValid) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  const auto entry = cache.get("e2fsck", options);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(entry->name, "e2fsck");  // shared_ptr still owns the entry
  const auto again = cache.get("e2fsck", options);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(entry.get(), again.get());
}

TEST(ComponentCache, BuildBypassesCaching) {
  const taint::AnalysisOptions options;
  const auto a = ComponentCache::build("mke2fs", options);
  const auto b = ComponentCache::build("mke2fs", options);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get()) << "build() must parse fresh every time";
}

TEST(ComponentCache, AnalyzedComponentsShareTheGlobalEntry) {
  const taint::AnalysisOptions options;
  AnalyzedComponent first("mke2fs", options);
  AnalyzedComponent second("mke2fs", options);
  EXPECT_EQ(&first.tu(), &second.tu()) << "same shared TU from the global cache";
  EXPECT_NE(&first.analyzer(), &second.analyzer()) << "analyzers stay per-instance";
}

}  // namespace
}  // namespace fsdep::corpus
