// ComponentCache behavior: parse-once semantics, concurrent first
// access, AnalysisOptions-keyed invalidation, error propagation —
// including the failure-poisoning regression (a failed build must be
// retried, not cached forever) and clear()-during-build safety.
#include "corpus/component_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "corpus/pipeline.h"

namespace fsdep::corpus {
namespace {

TEST(ComponentCache, ColdMissThenWarmHitsShareOneEntry) {
  ComponentCache cache;
  const taint::AnalysisOptions options;

  const auto first = cache.get("mke2fs", options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name, "mke2fs");
  ASSERT_NE(first->tu, nullptr);
  ASSERT_NE(first->sema, nullptr);
  EXPECT_FALSE(first->seeds.empty());

  const auto second = cache.get("mke2fs", options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get()) << "warm hit must reuse the parsed entry";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ComponentCache, ConcurrentFirstAccessParsesExactlyOnce) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  constexpr int kThreads = 8;

  std::vector<std::shared_ptr<const ComponentEntry>> entries(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &options, &entries, t] {
        entries[static_cast<std::size_t>(t)] = cache.get("resize2fs", options);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  EXPECT_EQ(cache.misses(), 1u) << "only the first requester may parse";
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& entry : entries) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), entries.front().get());
  }
}

TEST(ComponentCache, DifferentOptionsInvalidateTheEntry) {
  ComponentCache cache;
  taint::AnalysisOptions intra;
  taint::AnalysisOptions inter;
  inter.inter_procedural = true;

  const auto a = cache.get("mount", intra);
  const auto b = cache.get("mount", inter);  // options mismatch: rebuild
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u) << "one slot per component, keyed by name";

  // The slot now serves the new options; the old shared_ptr stays valid.
  const auto c = cache.get("mount", inter);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(b.get(), c.get());
  EXPECT_EQ(a->name, "mount");
}

TEST(ComponentCache, UnknownComponentFailureIsNeverCached) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  EXPECT_THROW(cache.get("no-such-component", options), std::runtime_error);
  EXPECT_EQ(cache.buildFailures(), 1u);
  EXPECT_EQ(cache.size(), 0u) << "the failed slot must be evicted";
  // The next request must retry the build (another miss + failure), not
  // rethrow a poisoned future as a hit.
  EXPECT_THROW(cache.get("no-such-component", options), std::runtime_error);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.buildFailures(), 2u);
}

// The headline regression: a transient builder failure (fault-injected
// source, OOM, ...) used to poison the slot — every later get() for the
// same (name, options) rethrew the first exception forever. This test
// fails on the old ComponentCache and passes with failure eviction.
TEST(ComponentCache, TransientBuilderFailureRetriesAndSucceeds) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  std::atomic<int> calls{0};
  cache.setBuilderForTesting(
      [&calls](const std::string& name, const taint::AnalysisOptions& opts) {
        if (calls.fetch_add(1) == 0) throw std::runtime_error("transient source failure");
        return ComponentCache::build(name, opts);
      });

  EXPECT_THROW(cache.get("mke2fs", options), std::runtime_error);
  EXPECT_EQ(cache.buildFailures(), 1u);

  const auto entry = cache.get("mke2fs", options);
  ASSERT_NE(entry, nullptr) << "second request must retry, not rethrow the cached failure";
  EXPECT_EQ(entry->name, "mke2fs");
  EXPECT_EQ(calls.load(), 2);

  const auto again = cache.get("mke2fs", options);
  EXPECT_EQ(entry.get(), again.get()) << "the successful retry is cached normally";
  EXPECT_EQ(cache.hits(), 1u);
}

// N threads pile onto a build that fails: everyone already waiting sees
// the exception exactly once, latecomers retry, and a final request
// succeeds. Run under TSan via check_sanitize.sh.
TEST(ComponentCache, WaitersDuringFailedBuildSeeErrorThenRetrySucceeds) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  std::atomic<int> calls{0};
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  cache.setBuilderForTesting(
      [&](const std::string& name, const taint::AnalysisOptions& opts) {
        if (calls.fetch_add(1) == 0) {
          release.wait();  // hold the waiters on the shared_future
          throw std::runtime_error("transient source failure");
        }
        return ComponentCache::build(name, opts);
      });

  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        if (cache.get("mount", options) != nullptr) successes.fetch_add(1);
      } catch (const std::runtime_error&) {
        errors.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_promise.set_value();
  for (std::thread& t : threads) t.join();

  EXPECT_GE(errors.load(), 1) << "at least the failing builder's own request errors";
  EXPECT_EQ(errors.load() + successes.load(), kThreads);
  EXPECT_EQ(cache.buildFailures(), 1u);

  const auto entry = cache.get("mount", options);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "mount");
}

TEST(ComponentCache, ClearDuringInFlightBuildIsSafe) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  std::promise<void> started_promise;
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();
  cache.setBuilderForTesting(
      [&](const std::string& name, const taint::AnalysisOptions& opts) {
        started_promise.set_value();
        release.wait();
        return ComponentCache::build(name, opts);
      });

  std::thread builder([&] {
    const auto entry = cache.get("ext4", options);
    EXPECT_NE(entry, nullptr) << "the in-flight build still completes for its waiters";
  });
  started_promise.get_future().wait();
  cache.clear();  // drops the slot while the builder is running
  release_promise.set_value();
  builder.join();

  // The finished builder's ticket no longer matches any slot, so it
  // must not resurrect or corrupt the cleared map.
  EXPECT_EQ(cache.size(), 0u);
  cache.setBuilderForTesting(nullptr);
  const auto entry = cache.get("ext4", options);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ComponentCache, DisabledCacheBuildsFreshAndPreservesEntries) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  const auto cached_entry = cache.get("mke2fs", options);

  cache.setEnabled(false);
  const auto fresh = cache.get("mke2fs", options);
  EXPECT_NE(cached_entry.get(), fresh.get()) << "disabled cache must parse fresh";
  EXPECT_EQ(cache.size(), 1u) << "existing entries are kept, not clobbered";
  EXPECT_EQ(cache.misses(), 2u);

  cache.setEnabled(true);
  const auto warm = cache.get("mke2fs", options);
  EXPECT_EQ(cached_entry.get(), warm.get()) << "re-enabling serves the original entry";
}

TEST(ComponentCache, ClearDropsEntriesButKeepsOutstandingPointersValid) {
  ComponentCache cache;
  const taint::AnalysisOptions options;
  const auto entry = cache.get("e2fsck", options);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(entry->name, "e2fsck");  // shared_ptr still owns the entry
  const auto again = cache.get("e2fsck", options);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(entry.get(), again.get());
}

TEST(ComponentCache, BuildBypassesCaching) {
  const taint::AnalysisOptions options;
  const auto a = ComponentCache::build("mke2fs", options);
  const auto b = ComponentCache::build("mke2fs", options);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get()) << "build() must parse fresh every time";
}

TEST(ComponentCache, AnalyzedComponentsShareTheGlobalEntry) {
  const taint::AnalysisOptions options;
  AnalyzedComponent first("mke2fs", options);
  AnalyzedComponent second("mke2fs", options);
  EXPECT_EQ(&first.tu(), &second.tu()) << "same shared TU from the global cache";
  EXPECT_NE(&first.analyzer(), &second.analyzer()) << "analyzers stay per-instance";
}

}  // namespace
}  // namespace fsdep::corpus
