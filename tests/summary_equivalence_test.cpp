// The SCC-summary inter-procedural engine is the default; the legacy
// whole-program re-analysis (AnalysisOptions::summaries = false) is kept
// as the oracle. On the embedded corpus the two must be observationally
// identical: same interned label ids (id order is semantic — rendered
// sets ascend by id and extraction anchors on the smallest id), same
// write events, same field-write bridges, same per-function return
// labels, and byte-identical extracted dependencies.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/pipeline.h"
#include "json/json.h"
#include "model/serialization.h"
#include "taint/label.h"

namespace fsdep::corpus {
namespace {

taint::AnalysisOptions summaryOpts() {
  taint::AnalysisOptions options;
  options.inter_procedural = true;
  options.summaries = true;
  return options;
}

taint::AnalysisOptions legacyOpts() {
  taint::AnalysisOptions options;
  options.inter_procedural = true;
  options.summaries = false;
  return options;
}

std::vector<std::string> allComponents() {
  std::vector<std::string> names = componentNames();
  for (const std::string& n : xfsComponentNames()) names.push_back(n);
  for (const std::string& n : btrfsComponentNames()) names.push_back(n);
  return names;
}

TEST(SummaryEquivalence, Table5ByteIdentical) {
  const Table5Result summary = runTable5(summaryOpts(), nullptr, {.jobs = 1});
  const Table5Result legacy = runTable5(legacyOpts(), nullptr, {.jobs = 1});
  EXPECT_EQ(json::writePretty(model::toJson(summary.unique_deps)),
            json::writePretty(model::toJson(legacy.unique_deps)));
  EXPECT_EQ(formatTable5(summary), formatTable5(legacy));
}

TEST(SummaryEquivalence, PerScenarioDependenciesByteIdentical) {
  for (const Scenario& s : scenarios()) {
    const std::vector<model::Dependency> summary = runScenario(s, summaryOpts(), nullptr, {.jobs = 1});
    const std::vector<model::Dependency> legacy = runScenario(s, legacyOpts(), nullptr, {.jobs = 1});
    EXPECT_EQ(json::writePretty(model::toJson(summary)), json::writePretty(model::toJson(legacy)))
        << "scenario " << s.id;
  }
}

// All-functions mode (no pre-selection) over every component of all three
// ecosystems: the deepest inter-procedural exercise the corpus offers.
TEST(SummaryEquivalence, WholeComponentAnalyzerStateIdentical) {
  for (const std::string& name : allComponents()) {
    AnalyzedComponent summary(name, summaryOpts());
    summary.analyze({});
    AnalyzedComponent legacy(name, legacyOpts());
    legacy.analyze({});
    const taint::Analyzer& a = summary.analyzer();
    const taint::Analyzer& b = legacy.analyzer();

    ASSERT_EQ(a.labels().size(), b.labels().size()) << name;
    for (taint::LabelId id = 0; id < a.labels().size(); ++id) {
      EXPECT_EQ(a.labels().name(id), b.labels().name(id)) << name << " label " << id;
    }

    const auto fields_a = a.fieldWrites();
    const auto fields_b = b.fieldWrites();
    ASSERT_EQ(fields_a.size(), fields_b.size()) << name;
    for (const auto& [key, labels] : fields_a) {
      const auto it = fields_b.find(key);
      ASSERT_NE(it, fields_b.end()) << name << " field " << key;
      EXPECT_EQ(labelSetToString(a.labels(), labels), labelSetToString(b.labels(), it->second))
          << name << " field " << key;
    }

    const auto writes_a = a.writeEvents();
    const auto writes_b = b.writeEvents();
    ASSERT_EQ(writes_a.size(), writes_b.size()) << name;
    for (std::size_t i = 0; i < writes_a.size(); ++i) {
      EXPECT_EQ(writes_a[i]->object, writes_b[i]->object) << name;
      EXPECT_EQ(writes_a[i]->loc.line, writes_b[i]->loc.line) << name;
      EXPECT_EQ(writes_a[i]->loc.column, writes_b[i]->loc.column) << name;
      EXPECT_EQ(labelSetToString(a.labels(), writes_a[i]->labels),
                labelSetToString(b.labels(), writes_b[i]->labels))
          << name << " write to " << writes_a[i]->object;
    }

    ASSERT_EQ(a.results().size(), b.results().size()) << name;
    for (std::size_t i = 0; i < a.results().size(); ++i) {
      const taint::FunctionTaint& ra = *a.results()[i];
      const taint::FunctionTaint& rb = *b.results()[i];
      ASSERT_EQ(ra.fn->name, rb.fn->name) << name;
      EXPECT_EQ(labelSetToString(a.labels(), ra.return_labels),
                labelSetToString(b.labels(), rb.return_labels))
          << name << "." << ra.fn->name << " returns";
    }
  }
}

// Taint traces are first-discovery ordered; the summary engine's final
// concrete pass must discover the same steps as the legacy engine's
// passes 2..N did.
TEST(SummaryEquivalence, TracesIdentical) {
  for (const std::string& name : allComponents()) {
    AnalyzedComponent summary(name, summaryOpts());
    summary.analyze({});
    AnalyzedComponent legacy(name, legacyOpts());
    legacy.analyze({});
    for (const taint::WriteEvent* w : summary.analyzer().writeEvents()) {
      const auto* trace_a = summary.analyzer().traceFor(w->object);
      const auto* trace_b = legacy.analyzer().traceFor(w->object);
      ASSERT_NE(trace_a, nullptr) << name << " " << w->object;
      ASSERT_NE(trace_b, nullptr) << name << " " << w->object;
      ASSERT_EQ(trace_a->size(), trace_b->size()) << name << " " << w->object;
      for (std::size_t i = 0; i < trace_a->size(); ++i) {
        EXPECT_EQ((*trace_a)[i].text, (*trace_b)[i].text) << name << " " << w->object;
        EXPECT_EQ((*trace_a)[i].loc.line, (*trace_b)[i].loc.line) << name << " " << w->object;
      }
    }
  }
}

}  // namespace
}  // namespace fsdep::corpus
