// DiskCache robustness: corruption-tolerant loads (any anomaly is a
// miss, never an error), schema-version isolation, option-keyed
// invalidation, LRU eviction, and byte-identical pipeline results
// cached vs uncached.
#include "corpus/disk_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "corpus/pipeline.h"
#include "extract/extractor.h"
#include "json/json.h"
#include "model/serialization.h"
#include "taint/analyzer.h"

namespace fsdep::corpus {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test cache directory under the system temp dir.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("fsdep-disk-cache-test-" +
             std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

CacheKey keyOf(const std::string& seed) {
  CacheKey key;
  key.mix(seed);
  return key;
}

TEST_F(DiskCacheTest, StoreThenLoadRoundTrips) {
  DiskCache cache(DiskCacheConfig{dir_});
  ASSERT_TRUE(cache.enabled());
  const CacheKey key = keyOf("round-trip");
  EXPECT_EQ(cache.load(key), std::nullopt);
  EXPECT_EQ(cache.misses(), 1u);

  const std::string payload = [] {
    std::string bytes = "payload with\nnewlines and ";
    bytes.push_back('\0');
    bytes += "\x01\xff binary bytes inside";
    return bytes;
  }();
  cache.store(key, payload);
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.stores(), 1u);
  EXPECT_EQ(cache.entryCount(), 1u);
}

TEST_F(DiskCacheTest, UnconfiguredCacheIsDisabledAndAlwaysMisses) {
  DiskCache cache;
  EXPECT_FALSE(cache.enabled());
  cache.store(keyOf("k"), "ignored");
  EXPECT_EQ(cache.load(keyOf("k")), std::nullopt);
  EXPECT_EQ(cache.entryCount(), 0u);
}

TEST_F(DiskCacheTest, CacheKeyLengthPrefixingDisambiguatesConcatenation) {
  CacheKey ab_c;
  ab_c.mix("ab");
  ab_c.mix("c");
  CacheKey a_bc;
  a_bc.mix("a");
  a_bc.mix("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());
  EXPECT_EQ(keyOf("same").hex(), keyOf("same").hex());
  EXPECT_EQ(keyOf("same").hex().size(), 32u);
}

TEST_F(DiskCacheTest, TruncatedEntryLoadsAsMiss) {
  DiskCache cache(DiskCacheConfig{dir_});
  const CacheKey key = keyOf("truncate-me");
  cache.store(key, std::string(4096, 'x'));
  ASSERT_TRUE(cache.load(key).has_value());

  // Tear the file mid-payload (a crash between write and rename cannot
  // produce this, but a full disk or manual tampering can).
  const std::string path = dir_ + "/v" + std::to_string(kDiskCacheSchemaVersion) + "/" +
                           key.hex() + ".entry";
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_EQ(cache.load(key), std::nullopt) << "truncated entry must be a miss, not an error";
}

TEST_F(DiskCacheTest, CorruptHeaderAndTrailingGarbageLoadAsMisses) {
  DiskCache cache(DiskCacheConfig{dir_});
  const CacheKey key = keyOf("corrupt-me");
  cache.store(key, "good payload");
  const std::string path = dir_ + "/v" + std::to_string(kDiskCacheSchemaVersion) + "/" +
                           key.hex() + ".entry";

  {  // garbage header
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not-a-cache-entry at all\n";
  }
  EXPECT_EQ(cache.load(key), std::nullopt);

  {  // valid header, size field lies (trailing garbage)
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "fsdep-cache v" << kDiskCacheSchemaVersion << " " << key.hex() << " 4\n";
    out << "0123EXTRA";
  }
  EXPECT_EQ(cache.load(key), std::nullopt);

  {  // header claims a different key (hand-renamed file)
    CacheKey other = keyOf("some-other-key");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "fsdep-cache v" << kDiskCacheSchemaVersion << " " << other.hex() << " 2\n";
    out << "ok";
  }
  EXPECT_EQ(cache.load(key), std::nullopt);

  // A rewritten valid entry works again — corruption never wedges a key.
  cache.store(key, "fresh payload");
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "fresh payload");
}

TEST_F(DiskCacheTest, SchemaVersionBumpInvalidatesCleanly) {
  DiskCache old_cache(DiskCacheConfig{dir_, 512, kDiskCacheSchemaVersion});
  const CacheKey key = keyOf("schema");
  old_cache.store(key, "written by the old schema");
  ASSERT_TRUE(old_cache.load(key).has_value());

  DiskCache new_cache(DiskCacheConfig{dir_, 512, kDiskCacheSchemaVersion + 1});
  EXPECT_EQ(new_cache.load(key), std::nullopt)
      << "a schema bump must never read old entries";
  new_cache.store(key, "written by the new schema");
  EXPECT_EQ(*new_cache.load(key), "written by the new schema");
  // Both schema trees coexist; neither tramples the other.
  EXPECT_EQ(*old_cache.load(key), "written by the old schema");
}

// The v1 → v2 bump (AnalysisOptions::compile_ir joined the key
// fingerprint) must leave pre-existing v1 trees on disk exactly as the
// old binary wrote them: a v2 cache over the same directory reads them
// as misses — never errors — and populates its own v2 tree alongside.
TEST_F(DiskCacheTest, OldSchemaTreesCoexistAndReadAsMisses) {
  static_assert(kDiskCacheSchemaVersion >= 2,
                "the IR-bearing entries bumped the schema to at least v2");
  DiskCache v1(DiskCacheConfig{dir_, 512, kDiskCacheSchemaVersion - 1});
  const CacheKey key = keyOf("ir-schema-bump");
  v1.store(key, "pre-IR entry");
  ASSERT_TRUE(v1.load(key).has_value());

  DiskCache current(DiskCacheConfig{dir_});  // defaults to kDiskCacheSchemaVersion
  EXPECT_EQ(current.load(key), std::nullopt)
      << "a v" << kDiskCacheSchemaVersion - 1 << " entry must read as a v"
      << kDiskCacheSchemaVersion << " miss";
  EXPECT_EQ(current.misses(), 1u);
  EXPECT_EQ(current.entryCount(), 0u) << "the old tree must not count as current entries";

  current.store(key, "IR-bearing entry");
  EXPECT_EQ(*current.load(key), "IR-bearing entry");

  // Both version trees exist side by side, each still serving its own
  // binary; invalidating the current schema leaves the old tree alone.
  const std::string old_tree = dir_ + "/v" + std::to_string(kDiskCacheSchemaVersion - 1);
  const std::string new_tree = dir_ + "/v" + std::to_string(kDiskCacheSchemaVersion);
  EXPECT_TRUE(fs::is_directory(old_tree));
  EXPECT_TRUE(fs::is_directory(new_tree));
  EXPECT_EQ(*v1.load(key), "pre-IR entry");

  current.invalidateAll();
  EXPECT_FALSE(fs::exists(new_tree));
  EXPECT_EQ(*v1.load(key), "pre-IR entry") << "invalidateAll must be schema-scoped";
}

TEST_F(DiskCacheTest, AnalysisOptionsChangeProducesDifferentKeys) {
  const std::vector<Scenario> all = scenarios();
  ASSERT_FALSE(all.empty());
  const extract::ExtractOptions eopts = extractOptions();

  taint::AnalysisOptions intra;
  taint::AnalysisOptions inter;
  inter.inter_procedural = true;
  EXPECT_NE(scenarioCacheKey(all[0], intra, eopts).hex(),
            scenarioCacheKey(all[0], inter, eopts).hex())
      << "--inter must never be served an --intra entry";

  taint::AnalysisOptions no_bridging = intra;
  no_bridging.field_bridging = false;
  EXPECT_NE(scenarioCacheKey(all[0], intra, eopts).hex(),
            scenarioCacheKey(all[0], no_bridging, eopts).hex());

  extract::ExtractOptions eopts2 = eopts;
  eopts2.enable_bridging = !eopts2.enable_bridging;
  EXPECT_NE(scenarioCacheKey(all[0], intra, eopts).hex(),
            scenarioCacheKey(all[0], intra, eopts2).hex());

  if (all.size() > 1) {
    EXPECT_NE(scenarioCacheKey(all[0], intra, eopts).hex(),
              scenarioCacheKey(all[1], intra, eopts).hex());
  }
}

TEST_F(DiskCacheTest, LruEvictionDropsTheOldestEntries) {
  DiskCache cache(DiskCacheConfig{dir_, /*max_entries=*/4});
  for (int i = 0; i < 8; ++i) {
    cache.store(keyOf("entry-" + std::to_string(i)), "payload");
  }
  EXPECT_LE(cache.entryCount(), 4u);
  EXPECT_GE(cache.evictions(), 4u);
  // The newest entry survives.
  EXPECT_TRUE(cache.load(keyOf("entry-7")).has_value());
}

TEST_F(DiskCacheTest, InvalidateAllEmptiesTheSchemaTree) {
  DiskCache cache(DiskCacheConfig{dir_});
  cache.store(keyOf("a"), "1");
  cache.store(keyOf("b"), "2");
  EXPECT_EQ(cache.entryCount(), 2u);
  cache.invalidateAll();
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.load(keyOf("a")), std::nullopt);
  // Still usable afterwards.
  cache.store(keyOf("a"), "3");
  EXPECT_EQ(*cache.load(keyOf("a")), "3");
}

/// End-to-end: runScenario with a disk cache produces byte-identical
/// dependencies on the cold (store) and warm (load) paths, and the warm
/// path does zero component builds.
TEST_F(DiskCacheTest, PipelineResultsAreByteIdenticalCachedVsUncached) {
  DiskCache& disk = DiskCache::global();
  disk.configure(DiskCacheConfig{dir_});
  const Scenario scenario = scenarios().front();
  const taint::AnalysisOptions topts;

  const std::vector<model::Dependency> uncached =
      runScenario(scenario, topts, nullptr, PipelineOptions{0, true, /*use_disk_cache=*/false});
  const std::vector<model::Dependency> cold =
      runScenario(scenario, topts, nullptr, PipelineOptions{0, true, true});
  const std::uint64_t hits_before = disk.hits();
  const std::vector<model::Dependency> warm =
      runScenario(scenario, topts, nullptr, PipelineOptions{0, true, true});
  EXPECT_GT(disk.hits(), hits_before) << "second run must be served from disk";

  const std::string baseline = json::writeCompact(model::toJson(uncached));
  EXPECT_EQ(baseline, json::writeCompact(model::toJson(cold)));
  EXPECT_EQ(baseline, json::writeCompact(model::toJson(warm)));

  disk.configure(DiskCacheConfig{});  // detach the global cache again
}

}  // namespace
}  // namespace fsdep::corpus
