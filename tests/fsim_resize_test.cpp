#include <gtest/gtest.h>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"

namespace fsdep::fsim {
namespace {

BlockDevice makeFs(bool sparse_super2, std::uint32_t size_blocks = 2048) {
  BlockDevice dev(16384, 1024);
  MkfsOptions o;
  o.block_size = 1024;
  o.size_blocks = size_blocks;
  o.blocks_per_group = 512;
  o.inode_ratio = 8192;
  o.sparse_super2 = sparse_super2;
  o.resize_inode = !sparse_super2;
  EXPECT_TRUE(MkfsTool::format(dev, o).ok());
  return dev;
}

TEST(Resize, GrowAddsGroupsAndStaysClean) {
  BlockDevice dev = makeFs(false);
  ResizeOptions ro;
  ro.new_size_blocks = 4096;
  const auto report = ResizeTool::resize(dev, ro);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().grew);

  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  EXPECT_EQ(sb.blocks_count, 4096u);
  EXPECT_EQ(sb.groupCount(), 8u);

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Resize, GrowPreservesFiles) {
  BlockDevice dev = makeFs(false);
  std::uint32_t ino = 0;
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    const auto created = mounted.value().createFile(4096);
    ASSERT_TRUE(created.ok());
    ino = created.value();
    mounted.value().unmount();
  }
  ResizeOptions ro;
  ro.new_size_blocks = 4096;
  ASSERT_TRUE(ResizeTool::resize(dev, ro).ok());
  auto mounted = MountTool::mount(dev, MountOptions{});
  ASSERT_TRUE(mounted.ok());
  const auto stat = mounted.value().statFile(ino);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->size_bytes, 4096u);
}

TEST(Resize, Figure1BuggySparseSuper2GrowCorrupts) {
  BlockDevice dev = makeFs(true);
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ro.fix_sparse_super2_accounting = false;  // historical behaviour
  const auto report = ResizeTool::resize(dev, ro);
  ASSERT_TRUE(report.ok()) << report.error().message;

  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_GT(fsck.value().corruptionCount(), 0)
      << "the paper's Figure 1 corruption must reproduce";
  bool free_count_problem = false;
  for (const FsckProblem& p : fsck.value().problems) {
    if (p.description.find("free block") != std::string::npos ||
        p.description.find("free blocks") != std::string::npos) {
      free_count_problem = true;
    }
  }
  EXPECT_TRUE(free_count_problem) << "corruption must be in the free-block accounting";
}

TEST(Resize, Figure1FixedSparseSuper2GrowIsClean) {
  BlockDevice dev = makeFs(true);
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ro.fix_sparse_super2_accounting = true;
  ASSERT_TRUE(ResizeTool::resize(dev, ro).ok());
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Resize, NonSparseSuper2GrowIsCleanEvenWithBuggyFlag) {
  BlockDevice dev = makeFs(false);
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ro.fix_sparse_super2_accounting = false;
  ASSERT_TRUE(ResizeTool::resize(dev, ro).ok());
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean())
      << "the bug requires the sparse_super2 dependency: " << fsck.value().summary();
}

TEST(Resize, RepairFixesTheFigure1Corruption) {
  BlockDevice dev = makeFs(true);
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ASSERT_TRUE(ResizeTool::resize(dev, ro).ok());
  const auto repair = FsckTool::check(dev, FsckOptions{.force = true, .repair = true});
  ASSERT_TRUE(repair.ok());
  EXPECT_GT(repair.value().problems.size(), 0u);
  const auto recheck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(recheck.ok());
  EXPECT_TRUE(recheck.value().isClean()) << recheck.value().summary();
}

TEST(Resize, ShrinkReleasesGroups) {
  BlockDevice dev = makeFs(false, 4096);
  ResizeOptions ro;
  ro.new_size_blocks = 2048;
  const auto report = ResizeTool::resize(dev, ro);
  ASSERT_TRUE(report.ok()) << report.error().message;
  FsImage image(dev);
  EXPECT_EQ(image.loadSuperblock().blocks_count, 2048u);
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

TEST(Resize, OnlineRequiresResizeInode) {
  BlockDevice dev = makeFs(true);  // sparse_super2 => no resize_inode
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ro.online = true;
  const auto report = ResizeTool::resize(dev, ro);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("resize_inode"), std::string::npos);
}

TEST(Resize, OnlineWorksWithResizeInode) {
  BlockDevice dev = makeFs(false);
  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  ro.online = true;
  EXPECT_TRUE(ResizeTool::resize(dev, ro).ok());
}

TEST(Resize, RefusesDirtyFilesystemWithoutForce) {
  BlockDevice dev = makeFs(false);
  FsImage image(dev);
  Superblock sb = image.loadSuperblock();
  sb.state = 0;  // dirty
  sb.updateChecksum();
  image.storeSuperblock(sb);

  ResizeOptions ro;
  ro.new_size_blocks = 3072;
  EXPECT_FALSE(ResizeTool::resize(dev, ro).ok());
  ro.force = true;
  EXPECT_TRUE(ResizeTool::resize(dev, ro).ok());
}

TEST(Resize, RefusesShrinkBelowAllocation) {
  BlockDevice dev = makeFs(false);
  {
    auto mounted = MountTool::mount(dev, MountOptions{});
    ASSERT_TRUE(mounted.ok());
    ASSERT_TRUE(mounted.value().createFile(64 * 1024).ok());
    mounted.value().unmount();
  }
  FsImage image(dev);
  const Superblock sb = image.loadSuperblock();
  const std::uint32_t in_use = sb.blocks_count - sb.free_blocks_count;
  ResizeOptions ro;
  ro.new_size_blocks = in_use / 2;
  EXPECT_FALSE(ResizeTool::resize(dev, ro).ok());
}

TEST(Resize, NoOpResize) {
  BlockDevice dev = makeFs(false);
  ResizeOptions ro;
  ro.new_size_blocks = 2048;
  const auto report = ResizeTool::resize(dev, ro);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().notes.empty());
  EXPECT_EQ(report.value().notes[0], "nothing to do");
}

TEST(Resize, ZeroSizeIsRejected) {
  BlockDevice dev = makeFs(false);
  ResizeOptions ro;
  ro.new_size_blocks = 0;
  EXPECT_FALSE(ResizeTool::resize(dev, ro).ok());
}

// Grow-shrink round trip keeps the filesystem consistent at every step.
class ResizeRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ResizeRoundTrip, GrowThenShrinkBackStaysClean) {
  const std::uint32_t target = GetParam();
  BlockDevice dev = makeFs(false);
  ResizeOptions grow;
  grow.new_size_blocks = target;
  ASSERT_TRUE(ResizeTool::resize(dev, grow).ok());
  ASSERT_TRUE(FsckTool::check(dev, FsckOptions{.force = true}).value().isClean());

  ResizeOptions shrink;
  shrink.new_size_blocks = 2048;
  ASSERT_TRUE(ResizeTool::resize(dev, shrink).ok());
  const auto fsck = FsckTool::check(dev, FsckOptions{.force = true});
  EXPECT_TRUE(fsck.value().isClean()) << fsck.value().summary();
}

INSTANTIATE_TEST_SUITE_P(Targets, ResizeRoundTrip,
                         ::testing::Values(2560u, 3072u, 4096u, 6144u, 8192u, 3000u, 5120u));

}  // namespace
}  // namespace fsdep::fsim
