// The empirical-study aggregations must reproduce Tables 2, 3 and 4 of
// the paper exactly.
#include <gtest/gtest.h>

#include "study/bug_study.h"
#include "study/coverage.h"

namespace fsdep::study {
namespace {

TEST(BugStudy, SixtySevenCases) {
  EXPECT_EQ(bugCases().size(), 67u);
}

TEST(BugStudy, UniqueIdsAndNonEmptyContent) {
  std::set<std::string> ids;
  for (const BugCase& bug : bugCases()) {
    EXPECT_TRUE(ids.insert(bug.id).second) << bug.id;
    EXPECT_FALSE(bug.title.empty());
    EXPECT_FALSE(bug.description.empty());
    EXPECT_FALSE(bug.dependency_ids.empty());
  }
}

TEST(BugStudy, EveryReferencedDependencyExists) {
  std::set<std::string> known;
  for (const StudyDependency& dep : studyDependencies()) known.insert(dep.id);
  for (const BugCase& bug : bugCases()) {
    for (const std::string& id : bug.dependency_ids) {
      EXPECT_TRUE(known.contains(id)) << bug.id << " references unknown " << id;
    }
  }
}

TEST(BugStudy, Table3RowS1) {
  const auto stats = aggregateTable3();
  const ScenarioBugStats& s1 = stats.at(0);
  EXPECT_EQ(s1.bugs, 13);
  EXPECT_EQ(s1.with_sd, 13);
  EXPECT_EQ(s1.with_cpd, 1);
  EXPECT_EQ(s1.with_ccd, 13);
}

TEST(BugStudy, Table3RowS2) {
  const auto stats = aggregateTable3();
  const ScenarioBugStats& s2 = stats.at(1);
  EXPECT_EQ(s2.bugs, 1);
  EXPECT_EQ(s2.with_sd, 1);
  EXPECT_EQ(s2.with_cpd, 0);
  EXPECT_EQ(s2.with_ccd, 1);
}

TEST(BugStudy, Table3RowS3) {
  const auto stats = aggregateTable3();
  const ScenarioBugStats& s3 = stats.at(2);
  EXPECT_EQ(s3.bugs, 17);
  EXPECT_EQ(s3.with_sd, 17);
  EXPECT_EQ(s3.with_cpd, 0);
  EXPECT_EQ(s3.with_ccd, 17);
}

TEST(BugStudy, Table3RowS4) {
  const auto stats = aggregateTable3();
  const ScenarioBugStats& s4 = stats.at(3);
  EXPECT_EQ(s4.bugs, 36);
  EXPECT_EQ(s4.with_sd, 36);
  EXPECT_EQ(s4.with_cpd, 4);
  EXPECT_EQ(s4.with_ccd, 34);
}

TEST(BugStudy, Table3Totals) {
  int bugs = 0;
  int sd = 0;
  int cpd = 0;
  int ccd = 0;
  for (const ScenarioBugStats& s : aggregateTable3()) {
    bugs += s.bugs;
    sd += s.with_sd;
    cpd += s.with_cpd;
    ccd += s.with_ccd;
  }
  EXPECT_EQ(bugs, 67);
  EXPECT_EQ(sd, 67);   // 100.0%
  EXPECT_EQ(cpd, 5);   // 7.5%
  EXPECT_EQ(ccd, 65);  // 97.0%
}

TEST(BugStudy, Table4Taxonomy) {
  const TaxonomyStats stats = aggregateTable4();
  using model::DepKind;
  EXPECT_EQ(stats.unique_counts.at(DepKind::SdDataType), 33);
  EXPECT_EQ(stats.unique_counts.at(DepKind::SdValueRange), 30);
  EXPECT_EQ(stats.unique_counts.at(DepKind::CpdControl), 4);
  EXPECT_FALSE(stats.unique_counts.contains(DepKind::CpdValue));
  EXPECT_EQ(stats.unique_counts.at(DepKind::CcdControl), 1);
  EXPECT_FALSE(stats.unique_counts.contains(DepKind::CcdValue));
  EXPECT_EQ(stats.unique_counts.at(DepKind::CcdBehavioral), 64);
  EXPECT_EQ(stats.total(), 132);
}

TEST(BugStudy, FormattedTablesContainHeadlines) {
  const std::string t3 = formatTable3();
  EXPECT_NE(t3.find("67"), std::string::npos);
  EXPECT_NE(t3.find("97.0%"), std::string::npos);
  EXPECT_NE(t3.find("7.5%"), std::string::npos);
  const std::string t4 = formatTable4();
  EXPECT_NE(t4.find("132"), std::string::npos);
}

// --- Table 2 coverage study. ---

TEST(Coverage, TokenizerStripsShellPunctuation) {
  const auto tokens = tokenizeCaseText("mount -o dax,ro \"$DEV\" && fsck -f;");
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "-o"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "-f"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "DEV"), tokens.end());
}

TEST(Coverage, ParameterMatchTokens) {
  model::Parameter p;
  p.flag = "-b";
  EXPECT_EQ(parameterMatchToken(p), "-b");
  p.flag = "-O sparse_super2";
  EXPECT_EQ(parameterMatchToken(p), "sparse_super2");
  p.flag = "-o commit=";
  EXPECT_EQ(parameterMatchToken(p), "commit=");
}

TEST(Coverage, Table2ExactCounts) {
  const auto reports = runCoverageStudy();
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_EQ(reports[0].suite, "xfstest");
  EXPECT_GT(reports[0].total_parameters, 85u);
  EXPECT_EQ(reports[0].usedCount(), 29u);

  EXPECT_EQ(reports[1].target, "e2fsck");
  EXPECT_GT(reports[1].total_parameters, 35u);
  EXPECT_EQ(reports[1].usedCount(), 6u);

  EXPECT_EQ(reports[2].target, "resize2fs");
  EXPECT_GT(reports[2].total_parameters, 15u);
  EXPECT_EQ(reports[2].usedCount(), 7u);
}

TEST(Coverage, UsedFractionsMatchPaperBands) {
  const auto reports = runCoverageStudy();
  EXPECT_LT(reports[0].usedFraction(), 0.35);  // paper: < 34.1%
  EXPECT_LT(reports[1].usedFraction(), 0.18);  // paper: < 17.1%
  EXPECT_LT(reports[2].usedFraction(), 0.47);  // paper: < 46.7%
}

TEST(Coverage, UnknownTargetYieldsEmptyReport) {
  corpus::SuiteManifest manifest;
  manifest.suite = "x";
  manifest.target = "no-such-component";
  manifest.case_texts = {"-b 4096"};
  const CoverageReport report = scanSuite(manifest, corpus::ecosystem());
  EXPECT_EQ(report.total_parameters, 0u);
  EXPECT_EQ(report.usedCount(), 0u);
}

TEST(Coverage, PrefixMatchingForValueOptions) {
  corpus::SuiteManifest manifest;
  manifest.suite = "x";
  manifest.target = "mount";
  manifest.case_texts = {"mount -o commit=77"};
  const CoverageReport report = scanSuite(manifest, corpus::ecosystem());
  EXPECT_TRUE(report.used_parameters.contains("mount.commit"));
  EXPECT_FALSE(report.used_parameters.contains("mount.stripe"));
}

}  // namespace
}  // namespace fsdep::study
