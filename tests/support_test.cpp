#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/result.h"
#include "support/source_manager.h"
#include "support/strings.h"

namespace fsdep {
namespace {

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto pieces = splitString("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(Strings, SplitSinglePiece) {
  const auto pieces = splitString("hello", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "hello");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trimString("  x  "), "x");
  EXPECT_EQ(trimString("\t\nabc\r "), "abc");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"solo"}, ","), "solo");
}

TEST(Strings, ParseInt64Decimal) {
  EXPECT_EQ(parseInt64("42"), 42);
  EXPECT_EQ(parseInt64("-17"), -17);
  EXPECT_EQ(parseInt64("+5"), 5);
  EXPECT_EQ(parseInt64(" 99 "), 99);
}

TEST(Strings, ParseInt64HexAndOctal) {
  EXPECT_EQ(parseInt64("0x10"), 16);
  EXPECT_EQ(parseInt64("0XFF"), 255);
  EXPECT_EQ(parseInt64("010"), 8);
  EXPECT_EQ(parseInt64("0"), 0);
}

TEST(Strings, ParseInt64Malformed) {
  EXPECT_FALSE(parseInt64("").has_value());
  EXPECT_FALSE(parseInt64("abc").has_value());
  EXPECT_FALSE(parseInt64("12x").has_value());
  EXPECT_FALSE(parseInt64("-").has_value());
  EXPECT_FALSE(parseInt64("0x").has_value());
  EXPECT_FALSE(parseInt64("99999999999999999999999").has_value());
}

TEST(Strings, FormatWithCommas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatWithCommas(-45000), "-45,000");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(formatPercent(0.078), "7.8%");
  EXPECT_EQ(formatPercent(1.0), "100.0%");
  EXPECT_EQ(formatPercent(0.0), "0.0%");
}

TEST(SourceManager, RegistersAndFindsBuffers) {
  SourceManager sm;
  const FileId a = sm.addBuffer("a.c", "int x;\n");
  const FileId b = sm.addBuffer("b.c", "int y;\n");
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(sm.name(a), "a.c");
  EXPECT_EQ(sm.contents(b), "int y;\n");
  EXPECT_EQ(sm.findByName("a.c").value, a.value);
  EXPECT_FALSE(sm.findByName("missing.c").valid());
}

TEST(SourceManager, LineText) {
  SourceManager sm;
  const FileId f = sm.addBuffer("f.c", "line one\nline two\r\nline three");
  EXPECT_EQ(sm.lineText(f, 1), "line one");
  EXPECT_EQ(sm.lineText(f, 2), "line two");
  EXPECT_EQ(sm.lineText(f, 3), "line three");
  EXPECT_EQ(sm.lineText(f, 4), "");
  EXPECT_EQ(sm.lineText(f, 0), "");
}

TEST(SourceManager, FormatLoc) {
  SourceManager sm;
  const FileId f = sm.addBuffer("x.c", "abc");
  EXPECT_EQ(formatLoc(sm, SourceLoc{f, 3, 7}), "x.c:3:7");
  EXPECT_EQ(formatLoc(sm, SourceLoc{}), "<unknown>");
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hasErrors());
  diags.warning(SourceLoc{}, "meh");
  EXPECT_FALSE(diags.hasErrors());
  diags.error(SourceLoc{}, "boom");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Diagnostics, RenderIncludesCaret) {
  SourceManager sm;
  const FileId f = sm.addBuffer("t.c", "int bad~;\n");
  DiagnosticEngine diags;
  diags.error(SourceLoc{f, 1, 8}, "unexpected character");
  const std::string rendered = diags.render(sm);
  EXPECT_NE(rendered.find("t.c:1:8: error: unexpected character"), std::string::npos);
  EXPECT_NE(rendered.find("int bad~;"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = makeError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_THROW((void)bad.value(), std::runtime_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

}  // namespace
}  // namespace fsdep
