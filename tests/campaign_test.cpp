// Campaign engine: schedule compilation, ddmin minimization, retry
// robustness, outcome dedup, corpus round-trip, and the determinism
// guarantee (same seed/matrix => bit-identical report at any --jobs).
#include <gtest/gtest.h>

#include "tools/campaign.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fsdep::tools {
namespace {

using fsim::FaultPlan;

FaultEvent crashAt(std::uint64_t index) {
  FaultEvent event;
  event.kind = FaultEventKind::CrashAtWrite;
  event.write_index = index;
  return event;
}

FaultEvent transientWrite(std::uint32_t block, std::uint32_t failures) {
  FaultEvent event;
  event.kind = FaultEventKind::TransientWrite;
  event.block = block;
  event.failures = failures;
  return event;
}

TEST(FaultScheduleTest, CompilesToDevicePlan) {
  const FaultSchedule schedule = {transientWrite(7, 3), crashAt(12)};
  const FaultPlan plan = compileFaultSchedule(schedule, 99);
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_TRUE(plan.crash_at_write.has_value());
  EXPECT_EQ(*plan.crash_at_write, 12u);
  EXPECT_EQ(plan.torn_mode, fsim::TornMode::Seeded);
  ASSERT_EQ(plan.transients.size(), 1u);
  EXPECT_EQ(plan.transients[0].block, 7u);
  EXPECT_EQ(plan.transients[0].failures, 3u);
  EXPECT_TRUE(plan.transients[0].on_write);
  EXPECT_FALSE(plan.fail_after_writes.has_value());
}

TEST(FaultScheduleTest, SummaryAndControl) {
  EXPECT_EQ(faultScheduleSummary({}), "control");
  EXPECT_EQ(faultScheduleSummary({transientWrite(3, 1), crashAt(12)}),
            "transient-write(b3 x1) + crash@12");
}

TEST(FaultScheduleTest, JsonRoundTrip) {
  FaultSchedule schedule = {crashAt(42), transientWrite(9, 2)};
  FaultEvent dead;
  dead.kind = FaultEventKind::FailAfterWrites;
  dead.write_index = 7;
  schedule.push_back(dead);
  FaultEvent read_fault;
  read_fault.kind = FaultEventKind::TransientRead;
  read_fault.block = 5;
  read_fault.failures = 4;
  schedule.push_back(read_fault);

  const Result<FaultSchedule> round =
      faultScheduleFromJson(json::Value(faultScheduleToJson(schedule)));
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value(), schedule);
}

TEST(FaultScheduleTest, RejectsUnknownKind) {
  const Result<json::Value> doc = json::parse(R"([{"kind":"meteor-strike"}])");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(faultScheduleFromJson(doc.value()).ok());
}

TEST(ConfigJsonTest, RoundTripsEveryLayer) {
  GeneratedConfig config = baselineConfig();
  config.mkfs.sparse_super2 = true;
  config.mkfs.resize_inode = false;
  config.mkfs.bigalloc = true;
  config.mkfs.cluster_size = 2048;
  config.mount.data_mode = fsim::DataMode::Writeback;
  config.mount.journal_checksum = true;
  config.tune.max_mount_count = 16;
  config.tune.label = "campaign";
  config.resize_target = 4096;

  const Result<GeneratedConfig> round =
      generatedConfigFromJson(json::Value(generatedConfigToJson(config)));
  ASSERT_TRUE(round.ok()) << round.error().message;
  const GeneratedConfig& r = round.value();
  EXPECT_EQ(r.mkfs.sparse_super2, true);
  EXPECT_EQ(r.mkfs.resize_inode, false);
  EXPECT_EQ(r.mkfs.bigalloc, true);
  EXPECT_EQ(r.mkfs.cluster_size, 2048u);
  EXPECT_EQ(r.mount.data_mode, fsim::DataMode::Writeback);
  EXPECT_EQ(r.mount.journal_checksum, true);
  ASSERT_TRUE(r.tune.max_mount_count.has_value());
  EXPECT_EQ(*r.tune.max_mount_count, 16);
  ASSERT_TRUE(r.tune.label.has_value());
  EXPECT_EQ(*r.tune.label, "campaign");
  EXPECT_EQ(r.resize_target, 4096u);
}

TEST(MinimizeTest, FindsSingleCulpritEvent) {
  const FaultSchedule schedule = {crashAt(1), transientWrite(7, 3), crashAt(2),
                                  transientWrite(9, 1), crashAt(3), crashAt(4)};
  const auto culprit = [](const FaultSchedule& candidate) {
    for (const FaultEvent& event : candidate) {
      if (event.kind == FaultEventKind::TransientWrite && event.block == 7) return true;
    }
    return false;
  };
  std::uint32_t probes = 0;
  const FaultSchedule minimal = minimizeSchedule(schedule, culprit, probes);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], transientWrite(7, 3));
  EXPECT_GT(probes, 0u);
}

TEST(MinimizeTest, EmptyScheduleFastPath) {
  // The op fails with no faults at all: minimal reproducer is empty.
  std::uint32_t probes = 0;
  const FaultSchedule minimal = minimizeSchedule(
      {crashAt(1), crashAt(2)}, [](const FaultSchedule&) { return true; }, probes);
  EXPECT_TRUE(minimal.empty());
  EXPECT_EQ(probes, 1u);
}

TEST(MinimizeTest, KeepsPairThatMustCooccur) {
  const FaultSchedule schedule = {crashAt(1), transientWrite(3, 1), crashAt(2),
                                  transientWrite(5, 1)};
  const auto both = [](const FaultSchedule& candidate) {
    bool a = false;
    bool b = false;
    for (const FaultEvent& event : candidate) {
      a |= event.kind == FaultEventKind::TransientWrite && event.block == 3;
      b |= event.kind == FaultEventKind::TransientWrite && event.block == 5;
    }
    return a && b;
  };
  std::uint32_t probes = 0;
  const FaultSchedule minimal = minimizeSchedule(schedule, both, probes);
  EXPECT_EQ(minimal.size(), 2u);
}

TEST(RetryTest, TransientExceptionIsRetried) {
  int calls = 0;
  const CellResult result = runCellWithRetry(
      [&]() -> Result<CellOutcome> {
        if (++calls < 3) throw std::runtime_error("worker lost");
        CellOutcome out;
        out.outcome = CrashOutcome::Recovered;
        out.digest = 0xabc;
        return out;
      },
      /*retries=*/2);
  EXPECT_EQ(result.status, CellStatus::Done);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(result.digest, 0xabcu);
}

TEST(RetryTest, ExhaustedRetriesMarkTheCellFailed) {
  int calls = 0;
  const CellResult result = runCellWithRetry(
      [&]() -> Result<CellOutcome> {
        ++calls;
        throw std::runtime_error("persistent shard failure");
      },
      /*retries=*/2);
  EXPECT_EQ(result.status, CellStatus::Failed);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(result.detail.find("persistent shard failure"), std::string::npos);
}

TEST(RetryTest, StructuredErrorsAreNotRetried) {
  int calls = 0;
  const CellResult result = runCellWithRetry(
      [&]() -> Result<CellOutcome> {
        ++calls;
        return makeError("unknown op");
      },
      /*retries=*/5);
  EXPECT_EQ(result.status, CellStatus::Failed);
  EXPECT_EQ(calls, 1);  // deterministic failure: retry is pointless
}

TEST(CellTest, UnknownOpIsAStructuredError) {
  const Result<CellOutcome> result =
      runCampaignCell(baselineConfig(), "warp-drive", {}, 42);
  EXPECT_FALSE(result.ok());
}

TEST(CellTest, ControlCellOfBuggyResizeOnSparse2IsSilentCorruption) {
  GeneratedConfig config = baselineConfig();
  config.mkfs.sparse_super2 = true;
  config.mkfs.resize_inode = false;
  const Result<CellOutcome> result = runCampaignCell(config, "resize-buggy", {}, 42);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().outcome, CrashOutcome::SilentCorruption);
  EXPECT_NE(result.value().digest, 0u);
}

TEST(CellTest, SameInputsSameOutcomeAndDigest) {
  GeneratedConfig config = baselineConfig();
  const FaultSchedule schedule = {crashAt(5)};
  const Result<CellOutcome> a = runCampaignCell(config, "mount", schedule, 42);
  const Result<CellOutcome> b = runCampaignCell(config, "mount", schedule, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().outcome, b.value().outcome);
  EXPECT_EQ(a.value().digest, b.value().digest);
}

CampaignOptions smallCampaign() {
  CampaignOptions options;
  options.seed = 42;
  options.ops = {"resize-buggy", "tune"};
  options.max_configs = 4;
  options.max_crash_points = 2;
  options.max_double_faults = 1;
  return options;
}

TEST(CampaignTest, ReportIsByteIdenticalAcrossJobCounts) {
  CampaignOptions serial = smallCampaign();
  serial.jobs = 1;
  CampaignOptions parallel = smallCampaign();
  parallel.jobs = 4;
  const Result<CampaignReport> a = runMatrixCampaign(serial, {});
  const Result<CampaignReport> b = runMatrixCampaign(parallel, {});
  ASSERT_TRUE(a.ok()) << a.error().message;
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_EQ(a.value().renderText(), b.value().renderText());
  EXPECT_EQ(json::writePretty(json::Value(a.value().toJson())),
            json::writePretty(json::Value(b.value().toJson())));
}

TEST(CampaignTest, DedupIdentifiesRepresentatives) {
  CampaignOptions options = smallCampaign();
  options.jobs = 1;
  const Result<CampaignReport> result = runMatrixCampaign(options, {});
  ASSERT_TRUE(result.ok());
  const CampaignReport& report = result.value();
  ASSERT_EQ(report.results.size(), report.cells.size());
  EXPECT_GT(report.unique_outcomes, 0u);
  EXPECT_GT(report.dedup_hits, 0u);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const CellResult& cell = report.results[i];
    if (cell.status != CellStatus::Done || !cell.duplicate) continue;
    const CellResult& first = report.results[cell.first_cell];
    EXPECT_LT(cell.first_cell, i);
    EXPECT_FALSE(first.duplicate);
    EXPECT_EQ(first.outcome, cell.outcome);
    EXPECT_EQ(first.digest, cell.digest);
    EXPECT_EQ(report.cells[cell.first_cell].op, report.cells[i].op);
  }
}

TEST(CampaignTest, MinimizerReducesBuggyResizeToAtMostThreeEvents) {
  CampaignOptions options = smallCampaign();
  options.ops = {"resize-buggy"};
  options.jobs = 1;
  const Result<CampaignReport> result = runMatrixCampaign(options, {});
  ASSERT_TRUE(result.ok());
  const CampaignReport& report = result.value();
  bool found_silent = false;
  for (const MinimizedRepro& repro : report.repros) {
    EXPECT_LE(repro.schedule.size(), 3u) << faultScheduleSummary(repro.schedule);
    found_silent |= repro.outcome == CrashOutcome::SilentCorruption;
    // The minimal schedule must still reproduce its recorded class.
    const Result<CellOutcome> replay = runCampaignCell(
        report.configs[repro.config_index].config, repro.op, repro.schedule, options.seed);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().outcome, repro.outcome);
    EXPECT_EQ(replay.value().digest, repro.digest);
  }
  EXPECT_TRUE(found_silent) << report.summary();
}

TEST(CampaignTest, CorpusPersistsAndReplays) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fsdep_campaign_corpus_test";
  std::filesystem::remove_all(dir);

  CampaignOptions options = smallCampaign();
  options.ops = {"resize-buggy"};
  options.jobs = 1;
  options.corpus_dir = dir.string();
  const Result<CampaignReport> result = runMatrixCampaign(options, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().repros.empty());

  const Result<ReplayReport> replay = replayCampaignCorpus(dir.string());
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  EXPECT_EQ(replay.value().cases.size(), result.value().repros.size());
  EXPECT_TRUE(replay.value().allMatch()) << replay.value().summary();
  for (const ReplayCase& c : replay.value().cases) EXPECT_TRUE(c.digest_match) << c.file;
  std::filesystem::remove_all(dir);
}

TEST(CampaignTest, ReplayDetectsTamperedOutcome) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fsdep_campaign_tamper_test";
  std::filesystem::remove_all(dir);

  CampaignOptions options = smallCampaign();
  options.ops = {"resize-buggy"};
  options.jobs = 1;
  options.corpus_dir = dir.string();
  ASSERT_TRUE(runMatrixCampaign(options, {}).ok());

  // Claim a repro recovered; the replay must flag the mismatch.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    const std::string from = "\"outcome\": \"silent-corruption\"";
    const std::size_t at = text.find(from);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, from.size(), "\"outcome\": \"recovered\"");
    std::ofstream out(entry.path());
    out << text;
    break;
  }
  const Result<ReplayReport> replay = replayCampaignCorpus(dir.string());
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  EXPECT_FALSE(replay.value().allMatch());
  std::filesystem::remove_all(dir);
}

TEST(CampaignTest, UnknownOpIsRejected) {
  CampaignOptions options;
  options.ops = {"warp-drive"};
  EXPECT_FALSE(runMatrixCampaign(options, {}).ok());
}

TEST(FailOnTest, ParsesClassLists) {
  const Result<FailOnSet> set = parseFailOn("silent-corruption,data-loss");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set.value().silent_corruption);
  EXPECT_TRUE(set.value().data_loss);
  EXPECT_FALSE(set.value().needs_repair);
  EXPECT_FALSE(set.value().failed);
  EXPECT_TRUE(set.value().matches(CrashOutcome::SilentCorruption));
  EXPECT_TRUE(set.value().matches(CrashOutcome::DataLoss));
  EXPECT_FALSE(set.value().matches(CrashOutcome::Recovered));
  EXPECT_FALSE(set.value().matches(CrashOutcome::NeedsRepair));
}

TEST(FailOnTest, AcceptsSpacesAndAllClasses) {
  const Result<FailOnSet> set = parseFailOn(" needs-repair , failed ");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set.value().needs_repair);
  EXPECT_TRUE(set.value().failed);
}

TEST(FailOnTest, RejectsUnknownAndEmpty) {
  EXPECT_FALSE(parseFailOn("bogus").ok());
  EXPECT_FALSE(parseFailOn("").ok());
  EXPECT_FALSE(parseFailOn(" , ").ok());
}

}  // namespace
}  // namespace fsdep::tools
