// Domain example: audit documentation against code with ConDocCk.
//
// Part 1 runs the full corpus audit (the paper's 12 issues). Part 2 shows
// the API on your own data: build dependency records and manual claims by
// hand and diff them.
//
// Build & run:  ./examples/doc_audit
#include <cstdio>

#include "tools/condocck.h"

using namespace fsdep;

int main() {
  std::puts("== Part 1: audit the embedded Ext4-ecosystem manuals ==\n");
  const tools::DocCheckReport corpus_report = tools::runCorpusDocCheck();
  std::printf("%s\n\n", corpus_report.summary().c_str());
  for (const tools::DocIssue& issue : corpus_report.issues) {
    std::printf("  [%-12s] %s\n", tools::docIssueKindName(issue.kind),
                issue.explanation.c_str());
  }

  std::puts("\n== Part 2: audit your own tool's docs ==\n");
  // Suppose your tool enforces: cache_size in [1, 4096] and
  // "direct_io excludes compression".
  model::Dependency range;
  range.kind = model::DepKind::SdValueRange;
  range.op = model::ConstraintOp::InRange;
  range.param = "mytool.cache_size";
  range.low = 1;
  range.high = 4096;
  range.id = "mytool-cache-range";
  range.description = "cache_size range";

  model::Dependency excl;
  excl.kind = model::DepKind::CpdControl;
  excl.op = model::ConstraintOp::Excludes;
  excl.param = "mytool.direct_io";
  excl.other_param = "mytool.compression";
  excl.id = "mytool-dio-compress";
  excl.description = "direct_io excludes compression";

  // ...but the manual documents the old 1..1024 range and forgets the
  // exclusion entirely.
  corpus::ManualEntry stale_range;
  stale_range.claim = range;
  stale_range.claim.high = 1024;
  stale_range.text = "cache_size accepts values between 1 and 1024.";

  const tools::DocCheckReport mine =
      tools::checkDocumentation({range, excl}, {stale_range});
  std::printf("%s\n", mine.summary().c_str());
  for (const tools::DocIssue& issue : mine.issues) {
    std::printf("  [%-12s] %s\n", tools::docIssueKindName(issue.kind),
                issue.explanation.c_str());
  }
  return 0;
}
