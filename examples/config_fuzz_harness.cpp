// Domain example: use ConBugCk as a configuration-fuzzing harness.
//
// The extracted dependencies steer generation: random configurations are
// repaired to satisfy every dependency, so each run survives the shallow
// validation layers and exercises deep tool behaviour. The same harness
// without repair shows why naive fuzzing stalls at mkfs. The generator
// itself lives in tools/confgen, shared with the campaign engine.
//
// Build & run:  ./examples/config_fuzz_harness [runs] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "corpus/pipeline.h"
#include "tools/conbugck.h"
#include "tools/confgen/confgen.h"

using namespace fsdep;

int main(int argc, char** argv) {
  int runs = 120;
  std::uint64_t seed = 2024;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      runs = std::atoi(argv[i]);
    }
  }

  std::puts("Extracting the dependency set from the corpus...");
  const std::vector<model::Dependency> deps = corpus::runTable5().unique_deps;
  std::printf("  %zu dependencies steer the generator\n\n", deps.size());

  // Show one repaired configuration in detail.
  tools::ConfigGenerator gen(seed);
  tools::GeneratedConfig raw = gen.randomConfig();
  std::printf("A raw random configuration (seed %llu): blocksize=%u inode_size=%u "
              "reserved=%u%% bigalloc=%d extents=%d meta_bg=%d resize_inode=%d\n",
              static_cast<unsigned long long>(seed), raw.mkfs.block_size, raw.mkfs.inode_size,
              raw.mkfs.reserved_ratio, raw.mkfs.bigalloc, raw.mkfs.extents, raw.mkfs.meta_bg,
              raw.mkfs.resize_inode);
  const auto raw_violations = fsim::MkfsTool::validate(raw.mkfs, 1ull << 30);
  std::printf("  violates %zu dependencies\n", raw_violations.size());
  for (const std::string& v : raw_violations) std::printf("    - %s\n", v.c_str());

  tools::repairConfig(raw, deps);
  std::printf("After dependency-aware repair: blocksize=%u inode_size=%u reserved=%u%% "
              "bigalloc=%d extents=%d meta_bg=%d resize_inode=%d\n",
              raw.mkfs.block_size, raw.mkfs.inode_size, raw.mkfs.reserved_ratio,
              raw.mkfs.bigalloc, raw.mkfs.extents, raw.mkfs.meta_bg, raw.mkfs.resize_inode);
  std::printf("  violates %zu dependencies\n\n",
              fsim::MkfsTool::validate(raw.mkfs, 1ull << 30).size());

  // Run both campaigns.
  std::printf("Driving %d configurations through mkfs -> mount -> files -> defrag -> "
              "resize -> fsck...\n\n", runs);
  const tools::CampaignResult naive = tools::runCampaign(runs, false, deps, seed);
  const tools::CampaignResult aware = tools::runCampaign(runs, true, deps, seed);
  std::fputs(tools::formatCampaignComparison(naive, aware).c_str(), stdout);
  return 0;
}
