// Domain example: drive the fsim toolchain through the full life of a
// filesystem — create, mount, use, unmount, resize — and watch the
// paper's Figure-1 corruption appear and get repaired.
//
// Build & run:  ./examples/resize_corruption_demo
#include <cstdio>

#include "fsim/fsck.h"
#include "fsim/mkfs.h"
#include "fsim/mount.h"
#include "fsim/resize.h"

using namespace fsdep::fsim;

int main() {
  std::puts("== 1. Create a sparse_super2 filesystem (2048 x 1KiB blocks) ==");
  BlockDevice device(16384, 1024);
  MkfsOptions mkfs;
  mkfs.block_size = 1024;
  mkfs.size_blocks = 2048;
  mkfs.blocks_per_group = 512;
  mkfs.inode_ratio = 8192;
  mkfs.sparse_super2 = true;
  mkfs.resize_inode = false;  // sparse_super2 excludes resize_inode
  mkfs.label = "demo";
  const auto formatted = MkfsTool::format(device, mkfs);
  if (!formatted.ok()) {
    std::fprintf(stderr, "mkfs: %s\n", formatted.error().message.c_str());
    return 1;
  }
  std::printf("   groups=%u backups at {%u, %u}\n", formatted.value().groupCount(),
              formatted.value().backup_bgs[0], formatted.value().backup_bgs[1]);

  std::puts("\n== 2. Mount and create some files ==");
  {
    auto mounted = MountTool::mount(device, MountOptions{});
    if (!mounted.ok()) {
      std::fprintf(stderr, "mount: %s\n", mounted.error().message.c_str());
      return 1;
    }
    for (int i = 0; i < 3; ++i) {
      const auto ino = mounted.value().createFile(4096, 2);
      if (ino.ok()) std::printf("   created inode %u\n", ino.value());
    }
    mounted.value().unmount();
  }

  std::puts("\n== 3. Expand with the historical resize2fs (the Figure-1 bug) ==");
  ResizeOptions resize;
  resize.new_size_blocks = 3072;
  resize.fix_sparse_super2_accounting = false;
  const auto resized = ResizeTool::resize(device, resize);
  if (!resized.ok()) {
    std::fprintf(stderr, "resize: %s\n", resized.error().message.c_str());
    return 1;
  }
  std::printf("   grew %u -> %u blocks\n", resized.value().old_blocks,
              resized.value().new_blocks);
  for (const std::string& note : resized.value().notes) std::printf("   note: %s\n", note.c_str());

  std::puts("\n== 4. fsck finds the corruption ==");
  auto report = FsckTool::check(device, FsckOptions{.force = true});
  std::printf("   %s\n", report.value().summary().c_str());
  for (const FsckProblem& p : report.value().problems) std::printf("    - %s\n", p.description.c_str());

  std::puts("\n== 5. fsck -y repairs it ==");
  report = FsckTool::check(device, FsckOptions{.force = true, .repair = true});
  std::printf("   repaired %zu problem(s)\n", report.value().problems.size());
  report = FsckTool::check(device, FsckOptions{.force = true});
  std::printf("   re-check: %s\n", report.value().summary().c_str());

  std::puts("\n== 6. The filesystem mounts again and the files survived ==");
  auto mounted = MountTool::mount(device, MountOptions{});
  if (!mounted.ok()) {
    std::fprintf(stderr, "mount: %s\n", mounted.error().message.c_str());
    return 1;
  }
  const auto stat = mounted.value().statFile(mounted.value().superblock().first_inode);
  std::printf("   first file present: %s\n", stat.has_value() ? "yes" : "no");
  mounted.value().unmount();
  return 0;
}
