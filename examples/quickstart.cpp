// Quickstart: extract multi-level configuration dependencies from your
// own C sources with the fsdep public API.
//
// The pipeline is: preprocess + parse -> resolve -> seed the taint
// analyzer with your configuration variables (the "manual annotations")
// -> run -> extract -> serialize to JSON.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "ast/parser.h"
#include "extract/extractor.h"
#include "json/json.h"
#include "lex/preprocessor.h"
#include "model/serialization.h"
#include "sema/sema.h"
#include "taint/analyzer.h"

using namespace fsdep;

// Two tiny "components" sharing a metadata struct — a miniature of the
// mke2fs / resize2fs relationship from the paper.
static const char* kFormatterSource = R"(
struct disk_header { unsigned int total_blocks; unsigned int flags; };

void usage(void);
long parse_num(char *text);
char *optarg;

void format_main(struct disk_header *hdr) {
  long capacity = parse_num(optarg);   /* seeded as formatter.capacity */
  int compress = 0;                    /* seeded as formatter.compress */

  if (capacity < 64 || capacity > 1048576) {
    usage();
  }
  hdr->total_blocks = capacity;
  hdr->flags |= (compress ? 1 : 0);
}
)";

static const char* kResizerSource = R"(
struct disk_header { unsigned int total_blocks; unsigned int flags; };

void fatal_error(const char *msg);
void do_grow(struct disk_header *hdr);
void do_shrink(struct disk_header *hdr);

void resize_main(struct disk_header *hdr) {
  long target = 0;                     /* seeded as resizer.target */
  if (target < 64) {
    fatal_error("target too small");
  }
  if (target > hdr->total_blocks) {    /* behaviour gated by the formatter */
    do_grow(hdr);
  } else {
    do_shrink(hdr);
  }
}
)";

namespace {

/// Parses and resolves one component; returns everything extraction needs.
struct Component {
  std::string name;
  SourceManager sm;
  DiagnosticEngine diags;
  std::unique_ptr<ast::TranslationUnit> tu;
  std::unique_ptr<sema::Sema> sema;
  std::unique_ptr<taint::Analyzer> analyzer;

  Component(std::string component_name, const char* source,
            std::vector<taint::Seed> seeds) {
    name = std::move(component_name);
    const FileId file = sm.addBuffer(name + ".c", source);
    lex::Preprocessor pp(sm, diags, nullptr);
    ast::Parser parser(pp.tokenize(file), diags);
    tu = parser.parseTranslationUnit(name + ".c");
    if (diags.hasErrors()) {
      std::fprintf(stderr, "%s\n", diags.render(sm).c_str());
      std::exit(1);
    }
    sema = std::make_unique<sema::Sema>(*tu, diags);
    sema->run();
    analyzer = std::make_unique<taint::Analyzer>(*tu, *sema);
    for (taint::Seed& seed : seeds) analyzer->addSeed(std::move(seed));
    analyzer->run();  // all functions
  }
};

}  // namespace

int main() {
  // 1. Build the two components with their taint seeds.
  Component formatter("formatter", kFormatterSource,
                      {{"format_main", "capacity", "formatter.capacity"},
                       {"format_main", "compress", "formatter.compress"}});
  Component resizer("resizer", kResizerSource, {{"resize_main", "target", "resizer.target"}});

  // 2. Extract, bridging the two through the shared disk_header struct.
  extract::ExtractOptions options;
  options.metadata_owner = "formatter";
  options.parser_types = {{"parse_num", "integer"}};
  options.error_functions = {"usage", "fatal_error"};

  const std::vector<model::Dependency> deps = extract::extractDependencies(
      {{formatter.name, false, formatter.analyzer.get(), formatter.sema.get()},
       {resizer.name, false, resizer.analyzer.get(), resizer.sema.get()}},
      options);

  // 3. Report.
  std::puts("Extracted multi-level configuration dependencies:\n");
  for (const model::Dependency& dep : deps) {
    std::printf("  %s\n", dep.summary().c_str());
    for (const std::string& step : dep.trace) std::printf("      %s\n", step.c_str());
  }

  std::puts("\nAs JSON (the storage format of the paper's prototype):\n");
  std::fputs(json::writePretty(model::toJson(deps)).c_str(), stdout);
  return 0;
}
