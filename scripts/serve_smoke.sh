#!/bin/sh
# Smoke-test the fsdep serve daemon end to end:
#   1. start `fsdep serve` on a private socket,
#   2. issue `fsdep query` requests (ping, extract, docck),
#   3. compare the extract answer byte-for-byte with the one-shot CLI,
#   4. check a warm repeat is served from the memo,
#   5. shut the daemon down cleanly and verify the socket is gone.
# Usage: scripts/serve_smoke.sh <fsdep-binary> [workdir]
set -eu

FSDEP=${1:?usage: serve_smoke.sh <fsdep-binary> [workdir]}
WORK=${2:-"$(mktemp -d /tmp/fsdep-serve-smoke.XXXXXX)"}
mkdir -p "$WORK"
SOCKET="$WORK/fsdep.sock"

cleanup() {
  # Best-effort: if the daemon is still up, ask it to stop.
  if [ -S "$SOCKET" ]; then
    "$FSDEP" query --socket "$SOCKET" --raw '{"type":"shutdown"}' >/dev/null 2>&1 || true
  fi
  [ -n "${SERVE_PID:-}" ] && wait "$SERVE_PID" 2>/dev/null || true
}
trap cleanup EXIT

rm -f "$SOCKET"
"$FSDEP" serve --socket "$SOCKET" > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the socket to appear (daemon startup is fast, but not instant).
tries=0
while [ ! -S "$SOCKET" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "serve_smoke: daemon never created $SOCKET" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== ping =="
PONG=$("$FSDEP" query --socket "$SOCKET" --type ping)
[ "$PONG" = "pong" ] || { echo "serve_smoke: expected pong, got '$PONG'" >&2; exit 1; }

echo "== extract: daemon answer must match the one-shot CLI byte-for-byte =="
"$FSDEP" extract --scenario s1 > "$WORK/oneshot.txt"
"$FSDEP" query --socket "$SOCKET" --scenario s1 > "$WORK/served-cold.txt"
cmp "$WORK/oneshot.txt" "$WORK/served-cold.txt"

echo "== warm repeat: memoized, still identical =="
"$FSDEP" query --socket "$SOCKET" --scenario s1 --timing > "$WORK/served-warm.txt" 2> "$WORK/warm-timing.txt"
cmp "$WORK/oneshot.txt" "$WORK/served-warm.txt"
grep -q "query: cached" "$WORK/warm-timing.txt" || {
  echo "serve_smoke: warm query was not served from the memo" >&2
  cat "$WORK/warm-timing.txt" >&2
  exit 1
}

echo "== docck over the daemon =="
"$FSDEP" query --socket "$SOCKET" --type docck > "$WORK/docck.txt"
"$FSDEP" docck > "$WORK/docck-oneshot.txt"
cmp "$WORK/docck.txt" "$WORK/docck-oneshot.txt"

echo "== clean shutdown =="
"$FSDEP" query --socket "$SOCKET" --raw '{"type":"shutdown"}' > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
if [ -S "$SOCKET" ]; then
  echo "serve_smoke: socket file survived shutdown" >&2
  exit 1
fi

echo "serve_smoke: all checks passed"
