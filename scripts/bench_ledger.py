#!/usr/bin/env python3
"""Perf-baseline ledger: record and compare benchmark runs.

The ledger lives in bench/baselines/{pipeline,campaign,scale,serve}.json
and is committed, so CI can hold every run against tracked history. Two
kinds of numbers are stored:

  * ratios — machine-independent (speedups, overhead multipliers,
    dedup rates). These are GATED: a >10% drift in the losing
    direction fails the run. Ratios divide two timings from the same
    process on the same machine, so they transfer between hosts.
  * absolute_ms — wall-clock means. Machine-dependent, recorded for
    context and printed as deltas, never gated.

Usage:
  bench_ledger.py update  [--baselines DIR] [--pipeline J] [--campaign J]
                          [--scale J] [--serve J]
  bench_ledger.py check   [--baselines DIR] [--pipeline J] [--campaign J]
                          [--scale J] [--serve J]

`update` rewrites the baseline files from the given benchmark outputs;
`check` compares and exits nonzero on a gated regression. Suites whose
input file is missing are skipped (so a pipeline-only run can still be
checked). The tolerance can be widened with FSDEP_LEDGER_TOLERANCE
(default 0.10 = 10%).
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# Per-suite ratio definitions: name -> (numerator, denominator, direction).
# direction "higher" = bigger is better (speedups); "lower" = smaller is
# better (overhead multipliers). Benchmarks are looked up by their
# google-benchmark aggregate mean name.
PIPELINE_RATIOS = {
    "cache_speedup": ("BM_Table5SeedSerial_mean", "BM_Table5CachedSerial_mean", "higher"),
    "parallel_speedup": ("BM_Table5SeedSerial_mean", "BM_Table5Parallel/4_mean", "higher"),
    "tracing_overhead": ("BM_Table5TracingOn_mean", "BM_Table5TracingOff_mean", "lower"),
    "profiling_overhead": ("BM_Table5ProfilingOn_mean", "BM_Table5TracingOff_mean", "lower"),
}

SCALE_RATIOS = {
    "scale_ratio": ("BM_AmplifiedInterSummary/100_mean", "BM_Table5IntraSeed_mean", "lower"),
    "inter_overhead": ("BM_AmplifiedInterSummary/100_mean", "BM_AmplifiedIntra/100_mean", "lower"),
    # What compiling transfer functions to Taint-IR buys over the AST
    # walk on the amplified corpus (end-to-end analyze+extract).
    "ir_speedup": ("BM_AmplifiedInterSummaryWalk/100_mean",
                   "BM_AmplifiedInterSummary/100_mean", "higher"),
}

PIPELINE_ABSOLUTE = [
    "BM_Table5SeedSerial_mean",
    "BM_Table5CachedSerial_mean",
    "BM_Table5Parallel/4_mean",
    "BM_Table5TracingOff_mean",
    "BM_Table5TracingOn_mean",
    "BM_Table5ProfilingOn_mean",
]

SCALE_ABSOLUTE = [
    "BM_Table5IntraSeed_mean",
    "BM_AmplifiedInterSummary/100_mean",
    "BM_AmplifiedIntra/100_mean",
    "BM_AmplifiedInterSummaryWalk/100_mean",
]


def benchmark_means(path):
    """google-benchmark JSON -> {name: real_time} for the mean aggregates."""
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["real_time"] for b in doc["benchmarks"]
            if b.get("aggregate_name") == "mean"}


def build_gbench_snapshot(suite, path, ratio_defs, absolute_names):
    means = benchmark_means(path)
    ratios = {}
    for name, (num, den, direction) in ratio_defs.items():
        if num not in means or den not in means:
            print(f"{suite}: skipping ratio {name} ({num} or {den} missing)")
            continue
        ratios[name] = {"value": means[num] / means[den], "direction": direction}
    absolute = {n: means[n] for n in absolute_names if n in means}
    return {"schema_version": SCHEMA_VERSION, "suite": suite,
            "ratios": ratios, "absolute_ms": absolute}


def build_serve_snapshot(path):
    """BENCH_serve.json (bench/perf_serve) -> ledger snapshot.

    The warm/cold speedup transfers between machines (both sides run in
    the same process); the p50 latencies are recorded for context. The
    hard <1 ms warm-p50 gate lives in bench_compare.sh, not here.
    """
    with open(path) as f:
        doc = json.load(f)
    # Microsecond-scale round trips jitter with scheduling, so the
    # speedup carries its own wide tolerance: the ledger only catches a
    # collapse of the warm path (an order-of-magnitude loss), while the
    # absolute <1 ms p50 budget in bench_compare.sh stays the hard gate.
    ratios = {
        "serve_warm_speedup": {"value": doc["warm_speedup"], "direction": "higher",
                               "tolerance": 0.5},
    }
    absolute = {
        "cold_p50_us": doc["cold"]["p50_us"],
        "disk_warm_p50_us": doc["disk_warm"]["p50_us"],
        "serve_warm_p50_us": doc["serve_warm"]["p50_us"],
    }
    return {"schema_version": SCHEMA_VERSION, "suite": "serve",
            "ratios": ratios, "absolute_ms": absolute}


def build_campaign_snapshot(path):
    with open(path) as f:
        doc = json.load(f)
    serial = doc["serial"]
    ratios = {
        "dedup_ratio": {"value": serial["dedup_ratio"], "direction": "higher"},
        "campaign_speedup": {"value": doc["speedup"], "direction": "higher"},
    }
    absolute = {"serial_cells_per_sec": serial["cells_per_sec"]}
    return {"schema_version": SCHEMA_VERSION, "suite": "campaign",
            "ratios": ratios, "absolute_ms": absolute}


def compare(suite, baseline, current, tolerance):
    """Returns a list of failure strings; prints every comparison."""
    failures = []
    base_ratios = baseline.get("ratios", {})
    for name, cur in current.get("ratios", {}).items():
        if name not in base_ratios:
            print(f"{suite}/{name}: {cur['value']:.3f} (no baseline — new ratio)")
            continue
        base = base_ratios[name]["value"]
        val = cur["value"]
        direction = cur["direction"]
        # A ratio may carry its own tolerance (noisy microbenchmarks);
        # the global FSDEP_LEDGER_TOLERANCE applies otherwise.
        tol = cur.get("tolerance", tolerance)
        drift = (val - base) / base if base else 0.0
        # Regression = drift in the losing direction beyond tolerance.
        if direction == "higher":
            regressed = val < base * (1.0 - tol)
        else:
            regressed = val > base * (1.0 + tol)
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{suite}/{name}: {val:.3f} vs baseline {base:.3f} "
              f"({drift:+.1%}, {direction} is better) {verdict}")
        if regressed:
            failures.append(
                f"{suite}/{name} regressed: {val:.3f} vs baseline {base:.3f} "
                f"({drift:+.1%} exceeds the {tol:.0%} gate)")
    for name, val in current.get("absolute_ms", {}).items():
        base = baseline.get("absolute_ms", {}).get(name)
        if base:
            print(f"{suite}/{name}: {val:.2f} vs baseline {base:.2f} "
                  f"({(val - base) / base:+.1%}, informational)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("mode", choices=["update", "check"])
    ap.add_argument("--baselines", default=None,
                    help="baseline directory (default: <repo>/bench/baselines)")
    ap.add_argument("--pipeline", default=None, help="BENCH_pipeline.json path")
    ap.add_argument("--campaign", default=None, help="BENCH_campaign.json path")
    ap.add_argument("--scale", default=None, help="BENCH_scale.json path")
    ap.add_argument("--serve", default=None, help="BENCH_serve.json path")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baselines or os.path.join(root, "bench", "baselines")
    tolerance = float(os.environ.get("FSDEP_LEDGER_TOLERANCE", "0.10"))

    inputs = {
        "pipeline": args.pipeline or os.path.join(root, "BENCH_pipeline.json"),
        "campaign": args.campaign or os.path.join(root, "BENCH_campaign.json"),
        "scale": args.scale or os.path.join(root, "BENCH_scale.json"),
        "serve": args.serve or os.path.join(root, "BENCH_serve.json"),
    }

    failures = []
    checked = 0
    for suite, path in inputs.items():
        if not os.path.exists(path):
            print(f"{suite}: {path} missing, skipped")
            continue
        if suite == "pipeline":
            snapshot = build_gbench_snapshot(suite, path, PIPELINE_RATIOS, PIPELINE_ABSOLUTE)
        elif suite == "scale":
            snapshot = build_gbench_snapshot(suite, path, SCALE_RATIOS, SCALE_ABSOLUTE)
        elif suite == "serve":
            snapshot = build_serve_snapshot(path)
        else:
            snapshot = build_campaign_snapshot(path)

        baseline_path = os.path.join(baseline_dir, f"{suite}.json")
        if args.mode == "update":
            os.makedirs(baseline_dir, exist_ok=True)
            with open(baseline_path, "w") as f:
                json.dump(snapshot, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"{suite}: wrote {baseline_path}")
        else:
            if not os.path.exists(baseline_path):
                failures.append(f"{suite}: no baseline at {baseline_path} "
                                "(run bench_compare.sh --update-baseline)")
                continue
            with open(baseline_path) as f:
                baseline = json.load(f)
            failures += compare(suite, baseline, snapshot, tolerance)
            checked += 1

    if args.mode == "check" and checked == 0 and not failures:
        sys.exit("ledger: no suites checked — no benchmark outputs found")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"ledger: {args.mode} complete"
          + (f", {checked} suite(s) within {tolerance:.0%}" if args.mode == "check" else ""))


if __name__ == "__main__":
    main()
