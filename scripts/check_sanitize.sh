#!/bin/sh
# Configure, build and run the test suite under sanitizers:
#   1. ASan+UBSan over the full suite (FSDEP_SANITIZE=address), and
#   2. TSan over the concurrency-sensitive tests (FSDEP_SANITIZE=thread):
#      the thread pool, the parse-once component cache, the parallel
#      pipeline determinism suite (intra and SCC-summary inter), the
#      summary-equivalence, IR-equivalence and amplifier suites (which
#      analyze shared cached components — and the shared per-component
#      compiled-IR cache — from pool workers), the corpus/pipeline
#      integration tests that drive them, the observability layer (whose trace
#      buffers and metrics registry are written from every worker), and
#      the campaign engine (whose determinism guarantee — bit-identical
#      reports at any --jobs — is exactly a data-race claim), the
#      failure-eviction and clear()-during-build paths of the component
#      cache, the on-disk result cache (atomic stores + LRU eviction
#      against concurrent loads), and the serve daemon (per-connection
#      threads against the shared memo and shutdown).
# Usage: scripts/check_sanitize.sh [builddir-prefix]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
PREFIX=${1:-"$ROOT/build-sanitize"}
JOBS=$(nproc)

echo "== ASan+UBSan: full test suite =="
cmake -B "$PREFIX" -S "$ROOT" -DFSDEP_SANITIZE=address
cmake --build "$PREFIX" -j "$JOBS"
ctest --test-dir "$PREFIX" --output-on-failure -j "$JOBS"

echo "== TSan: concurrency tests =="
cmake -B "$PREFIX-tsan" -S "$ROOT" -DFSDEP_SANITIZE=thread
cmake --build "$PREFIX-tsan" -j "$JOBS" \
  --target thread_pool_test component_cache_test pipeline_determinism_test \
           summary_equivalence_test ir_equivalence_test amplify_test \
           pipeline_test corpus_test obs_test obs_pipeline_test campaign_test \
           profile_test cli_obs_amplify_test disk_cache_test serve_test
# Force multi-threaded execution even on single-core machines so TSan
# actually sees cross-thread interleavings. cli_obs_amplify_test drives
# a TSan-instrumented fsdep binary over the amplified corpus with
# trace+metrics+profile all enabled — the most write-heavy workload the
# per-thread trace buffers see.
for t in thread_pool_test component_cache_test pipeline_determinism_test \
         summary_equivalence_test ir_equivalence_test amplify_test \
         pipeline_test corpus_test obs_test obs_pipeline_test campaign_test \
         profile_test cli_obs_amplify_test disk_cache_test serve_test; do
  echo "-- $t (FSDEP_JOBS=4)"
  FSDEP_JOBS=4 "$PREFIX-tsan/tests/$t"
done

echo "sanitize: all clean"
