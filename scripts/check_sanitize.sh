#!/bin/sh
# Configure, build and run the test suite under ASan+UBSan
# (the FSDEP_SANITIZE CMake option). Usage: scripts/check_sanitize.sh [builddir]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-sanitize"}

cmake -B "$BUILD" -S "$ROOT" -DFSDEP_SANITIZE=ON
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
