#!/usr/bin/env python3
"""Validate fsdep profile output for CI.

Two modes:

  validate_profile.py json <profile.json> [--schema docs/profile_schema.json]
      Validates the JSON attribution tree against the committed schema
      (a small built-in checker covering the schema subset we use:
      type / required / properties / items / minimum / $ref into
      definitions — no external jsonschema dependency). Also enforces
      tree invariants the schema can't express: self <= total,
      min <= p50 <= p95 <= max, and children totals fit in the parent.

  validate_profile.py folded <profile.folded>
      Sanity-checks collapsed-stack output: at least one stack, every
      line is `frame(;frame)* <count>`, no empty frames, counts > 0.

Exits nonzero with a message on the first violation.
"""

import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def resolve(schema, root):
    while "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            fail(f"unsupported $ref {ref}")
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        schema = node
    return schema


def fail(msg):
    sys.exit(f"validate_profile: {msg}")


def check(value, schema, root, path):
    schema = resolve(schema, root)
    expected = schema.get("type")
    if expected:
        py = TYPES[expected]
        ok = isinstance(value, py)
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if expected == "integer" and isinstance(value, float):
            ok = value.is_integer()
        if not ok:
            fail(f"{path}: expected {expected}, got {type(value).__name__} ({value!r})")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            fail(f"{path}: {value} below minimum {schema['minimum']}")
    if expected == "object":
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{path}: missing required field '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, root, f"{path}.{key}")
    if expected == "array" and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], root, f"{path}[{i}]")


def check_node_invariants(node, path):
    if node["self_us"] > node["total_us"]:
        fail(f"{path}: self_us {node['self_us']} > total_us {node['total_us']}")
    if node["count"] > 0:
        if not (node["min_us"] <= node["p50_us"] <= node["p95_us"] <= node["max_us"]):
            fail(f"{path}: percentile ordering violated "
                 f"(min {node['min_us']} p50 {node['p50_us']} "
                 f"p95 {node['p95_us']} max {node['max_us']})")
    child_total = sum(c["total_us"] for c in node["children"])
    if child_total > node["total_us"]:
        fail(f"{path}: children total {child_total} exceeds node total {node['total_us']}")
    for i, child in enumerate(node["children"]):
        check_node_invariants(child, f"{path}.children[{i}]")


def validate_json(profile_path, schema_path):
    with open(schema_path) as f:
        schema = json.load(f)
    with open(profile_path) as f:
        doc = json.load(f)
    check(doc, schema, schema, "$")
    check_node_invariants(doc["root"], "$.root")
    if doc["event_count"] == 0:
        fail("profile contains no events — instrumentation did not fire")
    print(f"validate_profile: {profile_path} ok — "
          f"{doc['event_count']} events, coverage {doc['coverage']:.1%}, "
          f"{doc['dropped_events']} dropped")


def validate_folded(folded_path):
    stacks = 0
    with open(folded_path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            stack, sep, count = line.rpartition(" ")
            if not sep or not stack:
                fail(f"{folded_path}:{lineno}: not 'stack count': {line!r}")
            if not count.isdigit() or int(count) <= 0:
                fail(f"{folded_path}:{lineno}: bad sample count {count!r}")
            frames = stack.split(";")
            if any(not frame for frame in frames):
                fail(f"{folded_path}:{lineno}: empty frame in {stack!r}")
            stacks += 1
    if stacks == 0:
        fail(f"{folded_path}: no stacks — nothing to flamegraph")
    print(f"validate_profile: {folded_path} ok — {stacks} stacks")


def main():
    if len(sys.argv) < 3 or sys.argv[1] not in ("json", "folded"):
        sys.exit(__doc__)
    mode, target = sys.argv[1], sys.argv[2]
    if mode == "folded":
        validate_folded(target)
        return
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    schema = os.path.join(root, "docs", "profile_schema.json")
    if len(sys.argv) >= 5 and sys.argv[3] == "--schema":
        schema = sys.argv[4]
    validate_json(target, schema)


if __name__ == "__main__":
    main()
