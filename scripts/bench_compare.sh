#!/bin/sh
# Build and run the serial-vs-parallel pipeline benchmark and emit the
# results as BENCH_pipeline.json (google-benchmark JSON format) in the
# repo root. BM_Table5SeedSerial is the seed pipeline's behavior (one
# thread, no component cache); compare it against BM_Table5Parallel/4
# for the end-to-end speedup reported in EXPERIMENTS.md.
#
# Usage: scripts/bench_compare.sh [--update-baseline | --against-baseline]
#                                 [builddir] [pipeline.json] [campaign.json] [scale.json]
#                                 [serve.json]
#
#   --update-baseline   after the run, rewrite bench/baselines/*.json
#                       from this run's numbers (scripts/bench_ledger.py)
#   --against-baseline  after the run, compare this run's
#                       machine-independent ratios to the committed
#                       baselines; >10% regression fails (CI mode)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)

LEDGER_MODE=""
case "${1:-}" in
  --update-baseline) LEDGER_MODE=update; shift ;;
  --against-baseline) LEDGER_MODE=check; shift ;;
esac

BUILD=${1:-"$ROOT/build"}
OUT=${2:-"$ROOT/BENCH_pipeline.json"}

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" --target perf_pipeline

"$BUILD/bench/perf_pipeline" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "wrote $OUT"

# Observability overhead guard: tracing-ON and profiling-ON vs
# tracing-OFF Table 5 runs. The instrumentation is always compiled in,
# so the fully-enabled trace collection is a measurable upper bound on
# what the disabled hooks (one relaxed atomic load per span) can cost;
# profiling adds span aggregation + render on top of the same trace.
# Fail when either upper bound exceeds 3%.
python3 - "$OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
means = {b["name"]: b["real_time"] for b in doc["benchmarks"]
         if b.get("aggregate_name") == "mean"}
off = means.get("BM_Table5TracingOff_mean")
on = means.get("BM_Table5TracingOn_mean")
profiling = means.get("BM_Table5ProfilingOn_mean")
if off is None or on is None or profiling is None:
    sys.exit("missing BM_Table5TracingOff/TracingOn/ProfilingOn in the benchmark output")
for label, enabled in (("tracing", on), ("profiling", profiling)):
    overhead = (enabled - off) / off * 100.0
    print(f"{label} overhead: off={off:.2f} on={enabled:.2f} -> {overhead:+.2f}%")
    if overhead > 3.0:
        sys.exit(f"{label} overhead {overhead:.2f}% exceeds the 3% budget")
EOF

# Kernel-scale guard: the SCC-summary inter-procedural engine on the
# 100x amplified corpus (600 components) against an intra-procedural
# Table 5 run on the seed corpus, plus the inter-vs-intra overhead on
# the amplified corpus itself and the Taint-IR vs AST-walk delta.
# Emits BENCH_scale.json. The issue's target for the scale ratio is
# 10x; FSDEP_SCALE_BUDGET (default 35, tightened from 60 when the
# compiled Taint-IR landed) is the hard regression bound,
# FSDEP_OVERHEAD_BUDGET (default 2.5) bounds what "fast enough to be
# the default" may cost over intra, and FSDEP_IR_SPEEDUP_FLOOR
# (default 1.2) is the minimum the compiled engine must keep winning
# over --legacy-walk on the amplified corpus.
SCALE_OUT=${4:-"$ROOT/BENCH_scale.json"}
cmake --build "$BUILD" -j "$(nproc)" --target perf_scale

"$BUILD/bench/perf_scale" \
  --benchmark_out="$SCALE_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "wrote $SCALE_OUT"

FSDEP_SCALE_BUDGET=${FSDEP_SCALE_BUDGET:-35} \
FSDEP_OVERHEAD_BUDGET=${FSDEP_OVERHEAD_BUDGET:-2.5} \
FSDEP_IR_SPEEDUP_FLOOR=${FSDEP_IR_SPEEDUP_FLOOR:-1.2} \
python3 - "$SCALE_OUT" <<'EOF'
import json, os, sys

doc = json.load(open(sys.argv[1]))
means = {b["name"]: b["real_time"] for b in doc["benchmarks"]
         if b.get("aggregate_name") == "mean"}
seed_intra = means.get("BM_Table5IntraSeed_mean")
amp_inter = means.get("BM_AmplifiedInterSummary/100_mean")
amp_intra = means.get("BM_AmplifiedIntra/100_mean")
amp_legacy = means.get("BM_AmplifiedInterLegacy/100_mean")
amp_walk = means.get("BM_AmplifiedInterSummaryWalk/100_mean")
if seed_intra is None or amp_inter is None or amp_intra is None:
    sys.exit("missing BM_Table5IntraSeed/BM_AmplifiedInterSummary/BM_AmplifiedIntra "
             "in the benchmark output")

scale_ratio = amp_inter / seed_intra
overhead = amp_inter / amp_intra
print(f"scale: seed-intra Table5 {seed_intra:.2f} ms, "
      f"100x amplified inter-summary {amp_inter:.2f} ms "
      f"-> scale ratio {scale_ratio:.1f}x (target 10x)")
print(f"scale: amplified inter-summary vs intra overhead {overhead:.2f}x"
      + (f", vs legacy global-pass {amp_inter / amp_legacy:.2f}x" if amp_legacy else ""))
if amp_walk is not None:
    print(f"scale: Taint-IR vs AST walk on the amplified corpus "
          f"{amp_walk / amp_inter:.2f}x")
if scale_ratio > 10.0:
    print(f"scale: NOTE ratio {scale_ratio:.1f}x misses the 10x target "
          "(see EXPERIMENTS.md for the measured-vs-target discussion)")

budget = float(os.environ["FSDEP_SCALE_BUDGET"])
if scale_ratio > budget:
    sys.exit(f"scale ratio {scale_ratio:.1f}x exceeds the {budget:.0f}x regression bound")
overhead_budget = float(os.environ["FSDEP_OVERHEAD_BUDGET"])
if overhead > overhead_budget:
    sys.exit(f"inter-vs-intra overhead {overhead:.2f}x exceeds the "
             f"{overhead_budget:.1f}x budget")
ir_floor = float(os.environ["FSDEP_IR_SPEEDUP_FLOOR"])
if amp_walk is not None and amp_walk / amp_inter < ir_floor:
    sys.exit(f"Taint-IR speedup {amp_walk / amp_inter:.2f}x fell below the "
             f"{ir_floor:.1f}x floor — the compiled engine stopped paying for itself")
EOF

# Campaign engine throughput: a bounded crash x fault x config matrix at
# jobs=1 vs full parallelism. Emits BENCH_campaign.json (cells/sec,
# dedup ratio, speedup) and sanity-checks that the canonical state hash
# is actually collapsing outcome classes.
CAMPAIGN_OUT=${3:-"$ROOT/BENCH_campaign.json"}
cmake --build "$BUILD" -j "$(nproc)" --target campaign
"$BUILD/bench/campaign" "$CAMPAIGN_OUT"

python3 - "$CAMPAIGN_OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
serial = doc["serial"]
print(f"campaign: {serial['cells']} cells, "
      f"{serial['cells_per_sec']:.0f} cells/sec serial, "
      f"dedup ratio {serial['dedup_ratio']:.1%}, "
      f"speedup {doc['speedup']:.2f}x")
if serial["dedup_ratio"] <= 0.0:
    sys.exit("campaign dedup collapsed nothing — the state digest is broken")
if serial["unique_outcomes"] == 0:
    sys.exit("campaign produced no outcome classes")
EOF

# Serve latency: cold extraction vs disk-warm vs warm daemon query.
# Emits BENCH_serve.json; the warm daemon p50 is gated against
# FSDEP_SERVE_P50_BUDGET_US (default 1000 us — the "interactive blame
# tooling" budget from the roadmap). perf_serve itself verifies every
# path returns byte-identical output and exits nonzero otherwise.
SERVE_OUT=${5:-"$ROOT/BENCH_serve.json"}
cmake --build "$BUILD" -j "$(nproc)" --target perf_serve
"$BUILD/bench/perf_serve" "$SERVE_OUT"

FSDEP_SERVE_P50_BUDGET_US=${FSDEP_SERVE_P50_BUDGET_US:-1000} \
python3 - "$SERVE_OUT" <<'EOF'
import json, os, sys

doc = json.load(open(sys.argv[1]))
warm = doc["serve_warm"]
cold = doc["cold"]
print(f"serve: cold p50 {cold['p50_us']} us, warm daemon p50 {warm['p50_us']} us "
      f"(p95 {warm['p95_us']} us), speedup {doc['warm_speedup']:.0f}x")
if not doc.get("byte_identical"):
    sys.exit("serve benchmark reported non-identical output")
budget = int(os.environ["FSDEP_SERVE_P50_BUDGET_US"])
if warm["p50_us"] >= budget:
    sys.exit(f"warm serve p50 {warm['p50_us']} us exceeds the {budget} us budget")
EOF

# Perf-baseline ledger: record this run (--update-baseline) or gate it
# against the committed bench/baselines/*.json (--against-baseline).
# Only machine-independent ratios are gated; absolute ms is printed as
# an informational delta.
if [ -n "$LEDGER_MODE" ]; then
  python3 "$ROOT/scripts/bench_ledger.py" "$LEDGER_MODE" \
    --pipeline "$OUT" --campaign "$CAMPAIGN_OUT" --scale "$SCALE_OUT" \
    --serve "$SERVE_OUT"
fi
