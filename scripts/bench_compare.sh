#!/bin/sh
# Build and run the serial-vs-parallel pipeline benchmark and emit the
# results as BENCH_pipeline.json (google-benchmark JSON format) in the
# repo root. BM_Table5SeedSerial is the seed pipeline's behavior (one
# thread, no component cache); compare it against BM_Table5Parallel/4
# for the end-to-end speedup reported in EXPERIMENTS.md.
# Usage: scripts/bench_compare.sh [builddir] [out.json]
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
OUT=${2:-"$ROOT/BENCH_pipeline.json"}

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$(nproc)" --target perf_pipeline

"$BUILD/bench/perf_pipeline" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "wrote $OUT"
