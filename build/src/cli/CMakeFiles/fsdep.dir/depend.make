# Empty dependencies file for fsdep.
# This may be replaced when dependencies are built.
