file(REMOVE_RECURSE
  "CMakeFiles/fsdep.dir/main.cpp.o"
  "CMakeFiles/fsdep.dir/main.cpp.o.d"
  "fsdep"
  "fsdep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
