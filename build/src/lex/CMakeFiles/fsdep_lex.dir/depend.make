# Empty dependencies file for fsdep_lex.
# This may be replaced when dependencies are built.
