file(REMOVE_RECURSE
  "libfsdep_lex.a"
)
