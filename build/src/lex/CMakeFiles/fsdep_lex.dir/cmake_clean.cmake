file(REMOVE_RECURSE
  "CMakeFiles/fsdep_lex.dir/lexer.cpp.o"
  "CMakeFiles/fsdep_lex.dir/lexer.cpp.o.d"
  "CMakeFiles/fsdep_lex.dir/preprocessor.cpp.o"
  "CMakeFiles/fsdep_lex.dir/preprocessor.cpp.o.d"
  "CMakeFiles/fsdep_lex.dir/token.cpp.o"
  "CMakeFiles/fsdep_lex.dir/token.cpp.o.d"
  "libfsdep_lex.a"
  "libfsdep_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
