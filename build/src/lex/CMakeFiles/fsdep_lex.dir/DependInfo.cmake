
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lex/lexer.cpp" "src/lex/CMakeFiles/fsdep_lex.dir/lexer.cpp.o" "gcc" "src/lex/CMakeFiles/fsdep_lex.dir/lexer.cpp.o.d"
  "/root/repo/src/lex/preprocessor.cpp" "src/lex/CMakeFiles/fsdep_lex.dir/preprocessor.cpp.o" "gcc" "src/lex/CMakeFiles/fsdep_lex.dir/preprocessor.cpp.o.d"
  "/root/repo/src/lex/token.cpp" "src/lex/CMakeFiles/fsdep_lex.dir/token.cpp.o" "gcc" "src/lex/CMakeFiles/fsdep_lex.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fsdep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
