file(REMOVE_RECURSE
  "CMakeFiles/fsdep_model.dir/config_model.cpp.o"
  "CMakeFiles/fsdep_model.dir/config_model.cpp.o.d"
  "CMakeFiles/fsdep_model.dir/dependency.cpp.o"
  "CMakeFiles/fsdep_model.dir/dependency.cpp.o.d"
  "CMakeFiles/fsdep_model.dir/serialization.cpp.o"
  "CMakeFiles/fsdep_model.dir/serialization.cpp.o.d"
  "libfsdep_model.a"
  "libfsdep_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
