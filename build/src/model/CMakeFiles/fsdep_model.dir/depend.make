# Empty dependencies file for fsdep_model.
# This may be replaced when dependencies are built.
