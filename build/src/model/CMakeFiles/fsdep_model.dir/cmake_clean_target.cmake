file(REMOVE_RECURSE
  "libfsdep_model.a"
)
