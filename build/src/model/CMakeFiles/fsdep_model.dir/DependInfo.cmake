
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config_model.cpp" "src/model/CMakeFiles/fsdep_model.dir/config_model.cpp.o" "gcc" "src/model/CMakeFiles/fsdep_model.dir/config_model.cpp.o.d"
  "/root/repo/src/model/dependency.cpp" "src/model/CMakeFiles/fsdep_model.dir/dependency.cpp.o" "gcc" "src/model/CMakeFiles/fsdep_model.dir/dependency.cpp.o.d"
  "/root/repo/src/model/serialization.cpp" "src/model/CMakeFiles/fsdep_model.dir/serialization.cpp.o" "gcc" "src/model/CMakeFiles/fsdep_model.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fsdep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fsdep_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
