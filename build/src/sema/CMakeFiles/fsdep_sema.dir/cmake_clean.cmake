file(REMOVE_RECURSE
  "CMakeFiles/fsdep_sema.dir/sema.cpp.o"
  "CMakeFiles/fsdep_sema.dir/sema.cpp.o.d"
  "libfsdep_sema.a"
  "libfsdep_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
