file(REMOVE_RECURSE
  "libfsdep_sema.a"
)
