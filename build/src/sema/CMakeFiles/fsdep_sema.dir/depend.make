# Empty dependencies file for fsdep_sema.
# This may be replaced when dependencies are built.
