# Empty dependencies file for fsdep_study.
# This may be replaced when dependencies are built.
