file(REMOVE_RECURSE
  "libfsdep_study.a"
)
