file(REMOVE_RECURSE
  "CMakeFiles/fsdep_study.dir/bug_study.cpp.o"
  "CMakeFiles/fsdep_study.dir/bug_study.cpp.o.d"
  "CMakeFiles/fsdep_study.dir/coverage.cpp.o"
  "CMakeFiles/fsdep_study.dir/coverage.cpp.o.d"
  "libfsdep_study.a"
  "libfsdep_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
