# Empty dependencies file for fsdep_ast.
# This may be replaced when dependencies are built.
