file(REMOVE_RECURSE
  "CMakeFiles/fsdep_ast.dir/ast.cpp.o"
  "CMakeFiles/fsdep_ast.dir/ast.cpp.o.d"
  "CMakeFiles/fsdep_ast.dir/dump.cpp.o"
  "CMakeFiles/fsdep_ast.dir/dump.cpp.o.d"
  "CMakeFiles/fsdep_ast.dir/parser.cpp.o"
  "CMakeFiles/fsdep_ast.dir/parser.cpp.o.d"
  "libfsdep_ast.a"
  "libfsdep_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
