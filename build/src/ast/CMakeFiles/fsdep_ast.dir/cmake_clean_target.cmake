file(REMOVE_RECURSE
  "libfsdep_ast.a"
)
