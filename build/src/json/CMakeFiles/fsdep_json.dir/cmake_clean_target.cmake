file(REMOVE_RECURSE
  "libfsdep_json.a"
)
