file(REMOVE_RECURSE
  "CMakeFiles/fsdep_json.dir/json.cpp.o"
  "CMakeFiles/fsdep_json.dir/json.cpp.o.d"
  "CMakeFiles/fsdep_json.dir/parser.cpp.o"
  "CMakeFiles/fsdep_json.dir/parser.cpp.o.d"
  "CMakeFiles/fsdep_json.dir/writer.cpp.o"
  "CMakeFiles/fsdep_json.dir/writer.cpp.o.d"
  "libfsdep_json.a"
  "libfsdep_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
