# Empty dependencies file for fsdep_json.
# This may be replaced when dependencies are built.
