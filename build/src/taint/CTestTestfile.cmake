# CMake generated Testfile for 
# Source directory: /root/repo/src/taint
# Build directory: /root/repo/build/src/taint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
