# Empty dependencies file for fsdep_taint.
# This may be replaced when dependencies are built.
