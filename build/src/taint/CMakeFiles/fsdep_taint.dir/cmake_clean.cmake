file(REMOVE_RECURSE
  "CMakeFiles/fsdep_taint.dir/analyzer.cpp.o"
  "CMakeFiles/fsdep_taint.dir/analyzer.cpp.o.d"
  "CMakeFiles/fsdep_taint.dir/label.cpp.o"
  "CMakeFiles/fsdep_taint.dir/label.cpp.o.d"
  "CMakeFiles/fsdep_taint.dir/state.cpp.o"
  "CMakeFiles/fsdep_taint.dir/state.cpp.o.d"
  "libfsdep_taint.a"
  "libfsdep_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
