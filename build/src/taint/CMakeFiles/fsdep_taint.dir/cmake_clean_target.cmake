file(REMOVE_RECURSE
  "libfsdep_taint.a"
)
