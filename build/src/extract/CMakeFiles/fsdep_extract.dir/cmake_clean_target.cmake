file(REMOVE_RECURSE
  "libfsdep_extract.a"
)
