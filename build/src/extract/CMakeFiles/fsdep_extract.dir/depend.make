# Empty dependencies file for fsdep_extract.
# This may be replaced when dependencies are built.
