file(REMOVE_RECURSE
  "CMakeFiles/fsdep_extract.dir/extractor.cpp.o"
  "CMakeFiles/fsdep_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/fsdep_extract.dir/guards.cpp.o"
  "CMakeFiles/fsdep_extract.dir/guards.cpp.o.d"
  "CMakeFiles/fsdep_extract.dir/scoring.cpp.o"
  "CMakeFiles/fsdep_extract.dir/scoring.cpp.o.d"
  "libfsdep_extract.a"
  "libfsdep_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
