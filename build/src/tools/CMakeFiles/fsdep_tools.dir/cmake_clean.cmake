file(REMOVE_RECURSE
  "CMakeFiles/fsdep_tools.dir/conbugck.cpp.o"
  "CMakeFiles/fsdep_tools.dir/conbugck.cpp.o.d"
  "CMakeFiles/fsdep_tools.dir/condocck.cpp.o"
  "CMakeFiles/fsdep_tools.dir/condocck.cpp.o.d"
  "CMakeFiles/fsdep_tools.dir/conhandleck.cpp.o"
  "CMakeFiles/fsdep_tools.dir/conhandleck.cpp.o.d"
  "CMakeFiles/fsdep_tools.dir/crashck.cpp.o"
  "CMakeFiles/fsdep_tools.dir/crashck.cpp.o.d"
  "CMakeFiles/fsdep_tools.dir/depgraph.cpp.o"
  "CMakeFiles/fsdep_tools.dir/depgraph.cpp.o.d"
  "libfsdep_tools.a"
  "libfsdep_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
