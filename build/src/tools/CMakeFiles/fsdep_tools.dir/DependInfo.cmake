
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/conbugck.cpp" "src/tools/CMakeFiles/fsdep_tools.dir/conbugck.cpp.o" "gcc" "src/tools/CMakeFiles/fsdep_tools.dir/conbugck.cpp.o.d"
  "/root/repo/src/tools/condocck.cpp" "src/tools/CMakeFiles/fsdep_tools.dir/condocck.cpp.o" "gcc" "src/tools/CMakeFiles/fsdep_tools.dir/condocck.cpp.o.d"
  "/root/repo/src/tools/conhandleck.cpp" "src/tools/CMakeFiles/fsdep_tools.dir/conhandleck.cpp.o" "gcc" "src/tools/CMakeFiles/fsdep_tools.dir/conhandleck.cpp.o.d"
  "/root/repo/src/tools/crashck.cpp" "src/tools/CMakeFiles/fsdep_tools.dir/crashck.cpp.o" "gcc" "src/tools/CMakeFiles/fsdep_tools.dir/crashck.cpp.o.d"
  "/root/repo/src/tools/depgraph.cpp" "src/tools/CMakeFiles/fsdep_tools.dir/depgraph.cpp.o" "gcc" "src/tools/CMakeFiles/fsdep_tools.dir/depgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/fsdep_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/fsdep_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/fsim/CMakeFiles/fsdep_fsim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fsdep_model.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/fsdep_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/fsdep_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/fsdep_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/fsdep_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/fsdep_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fsdep_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fsdep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
