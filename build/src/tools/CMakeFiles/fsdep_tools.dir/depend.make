# Empty dependencies file for fsdep_tools.
# This may be replaced when dependencies are built.
