file(REMOVE_RECURSE
  "libfsdep_tools.a"
)
