src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e2fsck.cpp.o: \
 /root/repo/src/corpus/sources_e2fsck.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
