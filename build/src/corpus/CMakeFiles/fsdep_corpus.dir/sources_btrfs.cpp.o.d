src/corpus/CMakeFiles/fsdep_corpus.dir/sources_btrfs.cpp.o: \
 /root/repo/src/corpus/sources_btrfs.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
