src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mount.cpp.o: \
 /root/repo/src/corpus/sources_mount.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
