src/corpus/CMakeFiles/fsdep_corpus.dir/sources_resize2fs.cpp.o: \
 /root/repo/src/corpus/sources_resize2fs.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
