src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mke2fs.cpp.o: \
 /root/repo/src/corpus/sources_mke2fs.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
