file(REMOVE_RECURSE
  "libfsdep_corpus.a"
)
