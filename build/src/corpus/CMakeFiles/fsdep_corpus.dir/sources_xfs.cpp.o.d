src/corpus/CMakeFiles/fsdep_corpus.dir/sources_xfs.cpp.o: \
 /root/repo/src/corpus/sources_xfs.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
