src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e4defrag.cpp.o: \
 /root/repo/src/corpus/sources_e4defrag.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
