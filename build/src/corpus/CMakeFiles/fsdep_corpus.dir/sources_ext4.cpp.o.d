src/corpus/CMakeFiles/fsdep_corpus.dir/sources_ext4.cpp.o: \
 /root/repo/src/corpus/sources_ext4.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
