src/corpus/CMakeFiles/fsdep_corpus.dir/sources_headers.cpp.o: \
 /root/repo/src/corpus/sources_headers.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/sources_internal.h
