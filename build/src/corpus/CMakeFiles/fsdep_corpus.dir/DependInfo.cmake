
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/corpus.cpp.o.d"
  "/root/repo/src/corpus/ground_truth.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/ground_truth.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/ground_truth.cpp.o.d"
  "/root/repo/src/corpus/manuals.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/manuals.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/manuals.cpp.o.d"
  "/root/repo/src/corpus/pipeline.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/pipeline.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/pipeline.cpp.o.d"
  "/root/repo/src/corpus/registry.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/registry.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/registry.cpp.o.d"
  "/root/repo/src/corpus/scenarios.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/scenarios.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/scenarios.cpp.o.d"
  "/root/repo/src/corpus/seeds.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/seeds.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/seeds.cpp.o.d"
  "/root/repo/src/corpus/sources_btrfs.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_btrfs.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_btrfs.cpp.o.d"
  "/root/repo/src/corpus/sources_e2fsck.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e2fsck.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e2fsck.cpp.o.d"
  "/root/repo/src/corpus/sources_e4defrag.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e4defrag.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_e4defrag.cpp.o.d"
  "/root/repo/src/corpus/sources_ext4.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_ext4.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_ext4.cpp.o.d"
  "/root/repo/src/corpus/sources_headers.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_headers.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_headers.cpp.o.d"
  "/root/repo/src/corpus/sources_mke2fs.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mke2fs.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mke2fs.cpp.o.d"
  "/root/repo/src/corpus/sources_mount.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mount.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_mount.cpp.o.d"
  "/root/repo/src/corpus/sources_resize2fs.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_resize2fs.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_resize2fs.cpp.o.d"
  "/root/repo/src/corpus/sources_xfs.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_xfs.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/sources_xfs.cpp.o.d"
  "/root/repo/src/corpus/suites.cpp" "src/corpus/CMakeFiles/fsdep_corpus.dir/suites.cpp.o" "gcc" "src/corpus/CMakeFiles/fsdep_corpus.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/fsdep_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fsdep_model.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/fsdep_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/fsdep_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/fsdep_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/fsdep_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/fsdep_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/fsdep_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fsdep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
