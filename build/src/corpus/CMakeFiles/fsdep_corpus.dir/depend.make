# Empty dependencies file for fsdep_corpus.
# This may be replaced when dependencies are built.
