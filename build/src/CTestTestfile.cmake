# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("json")
subdirs("model")
subdirs("lex")
subdirs("ast")
subdirs("sema")
subdirs("cfg")
subdirs("taint")
subdirs("extract")
subdirs("corpus")
subdirs("study")
subdirs("fsim")
subdirs("tools")
subdirs("cli")
