file(REMOVE_RECURSE
  "libfsdep_cfg.a"
)
