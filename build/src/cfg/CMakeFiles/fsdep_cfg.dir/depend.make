# Empty dependencies file for fsdep_cfg.
# This may be replaced when dependencies are built.
