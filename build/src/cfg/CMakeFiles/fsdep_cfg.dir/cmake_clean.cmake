file(REMOVE_RECURSE
  "CMakeFiles/fsdep_cfg.dir/cfg.cpp.o"
  "CMakeFiles/fsdep_cfg.dir/cfg.cpp.o.d"
  "libfsdep_cfg.a"
  "libfsdep_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
