file(REMOVE_RECURSE
  "libfsdep_fsim.a"
)
