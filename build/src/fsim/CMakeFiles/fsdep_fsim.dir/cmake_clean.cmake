file(REMOVE_RECURSE
  "CMakeFiles/fsdep_fsim.dir/block_device.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/block_device.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/coverage.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/coverage.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/defrag.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/defrag.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/fsck.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/fsck.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/image.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/image.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/layout.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/layout.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/mkfs.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/mkfs.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/mount.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/mount.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/resize.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/resize.cpp.o.d"
  "CMakeFiles/fsdep_fsim.dir/tune.cpp.o"
  "CMakeFiles/fsdep_fsim.dir/tune.cpp.o.d"
  "libfsdep_fsim.a"
  "libfsdep_fsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
