
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsim/block_device.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/block_device.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/block_device.cpp.o.d"
  "/root/repo/src/fsim/coverage.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/coverage.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/coverage.cpp.o.d"
  "/root/repo/src/fsim/defrag.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/defrag.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/defrag.cpp.o.d"
  "/root/repo/src/fsim/fsck.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/fsck.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/fsck.cpp.o.d"
  "/root/repo/src/fsim/image.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/image.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/image.cpp.o.d"
  "/root/repo/src/fsim/layout.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/layout.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/layout.cpp.o.d"
  "/root/repo/src/fsim/mkfs.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/mkfs.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/mkfs.cpp.o.d"
  "/root/repo/src/fsim/mount.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/mount.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/mount.cpp.o.d"
  "/root/repo/src/fsim/resize.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/resize.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/resize.cpp.o.d"
  "/root/repo/src/fsim/tune.cpp" "src/fsim/CMakeFiles/fsdep_fsim.dir/tune.cpp.o" "gcc" "src/fsim/CMakeFiles/fsdep_fsim.dir/tune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fsdep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
