# Empty dependencies file for fsdep_fsim.
# This may be replaced when dependencies are built.
