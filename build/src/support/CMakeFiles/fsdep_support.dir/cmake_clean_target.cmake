file(REMOVE_RECURSE
  "libfsdep_support.a"
)
