# Empty dependencies file for fsdep_support.
# This may be replaced when dependencies are built.
