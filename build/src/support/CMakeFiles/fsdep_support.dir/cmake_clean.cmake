file(REMOVE_RECURSE
  "CMakeFiles/fsdep_support.dir/diagnostics.cpp.o"
  "CMakeFiles/fsdep_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/fsdep_support.dir/source_manager.cpp.o"
  "CMakeFiles/fsdep_support.dir/source_manager.cpp.o.d"
  "CMakeFiles/fsdep_support.dir/strings.cpp.o"
  "CMakeFiles/fsdep_support.dir/strings.cpp.o.d"
  "libfsdep_support.a"
  "libfsdep_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdep_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
