
#ifndef EXT4_FS_H
#define EXT4_FS_H

typedef unsigned char  u8;
typedef unsigned short u16;
typedef unsigned int   u32;
typedef unsigned long  u64;

#define EXT4_SUPER_MAGIC      61267
#define EXT4_MIN_BLOCK_SIZE   1024
#define EXT4_MAX_BLOCK_SIZE   65536
#define EXT4_MAX_BLOCK_LOG_SIZE 6
#define EXT4_GOOD_OLD_FIRST_INO 11
#define EXT4_GOOD_OLD_INODE_SIZE 128
#define EXT4_VALID_FS         1
#define EXT4_ERROR_FS         2

/* Compatible feature flags (a subset of the real ext4 set). */
enum ext4_feature_compat {
  EXT4_FEATURE_COMPAT_DIR_PREALLOC  = 0x0001,
  EXT4_FEATURE_COMPAT_HAS_JOURNAL   = 0x0004,
  EXT4_FEATURE_COMPAT_EXT_ATTR      = 0x0008,
  EXT4_FEATURE_COMPAT_RESIZE_INODE  = 0x0010,
  EXT4_FEATURE_COMPAT_DIR_INDEX     = 0x0020,
  EXT4_FEATURE_COMPAT_SPARSE_SUPER2 = 0x0200
};

/* Incompatible feature flags. */
enum ext4_feature_incompat {
  EXT4_FEATURE_INCOMPAT_FILETYPE    = 0x0002,
  EXT4_FEATURE_INCOMPAT_RECOVER     = 0x0004,
  EXT4_FEATURE_INCOMPAT_JOURNAL_DEV = 0x0008,
  EXT4_FEATURE_INCOMPAT_META_BG     = 0x0010,
  EXT4_FEATURE_INCOMPAT_EXTENTS     = 0x0040,
  EXT4_FEATURE_INCOMPAT_64BIT       = 0x0080,
  EXT4_FEATURE_INCOMPAT_FLEX_BG     = 0x0200,
  EXT4_FEATURE_INCOMPAT_INLINE_DATA = 0x8000,
  EXT4_FEATURE_INCOMPAT_ENCRYPT     = 0x10000
};

/* Read-only compatible feature flags. */
enum ext4_feature_ro_compat {
  EXT4_FEATURE_RO_COMPAT_SPARSE_SUPER  = 0x0001,
  EXT4_FEATURE_RO_COMPAT_LARGE_FILE    = 0x0002,
  EXT4_FEATURE_RO_COMPAT_GDT_CSUM      = 0x0010,
  EXT4_FEATURE_RO_COMPAT_QUOTA         = 0x0100,
  EXT4_FEATURE_RO_COMPAT_BIGALLOC      = 0x0200,
  EXT4_FEATURE_RO_COMPAT_METADATA_CSUM = 0x0400
};

/*
 * The ext4 superblock as persisted at offset 1024 of the volume. Every
 * component of the ecosystem reads or writes (a subset of) these fields;
 * they are the persistent form of the creation-time configuration.
 */
struct ext4_super_block {
  u32 s_inodes_count;
  u32 s_blocks_count;
  u32 s_r_blocks_count;
  u32 s_free_blocks_count;
  u32 s_free_inodes_count;
  u32 s_first_data_block;
  u32 s_log_block_size;
  u32 s_log_cluster_size;
  u32 s_blocks_per_group;
  u32 s_clusters_per_group;
  u32 s_inodes_per_group;
  u32 s_mtime;
  u32 s_wtime;
  u16 s_mnt_count;
  u16 s_max_mnt_count;
  u16 s_magic;
  u16 s_state;
  u16 s_errors;
  u16 s_minor_rev_level;
  u32 s_lastcheck;
  u32 s_checkinterval;
  u32 s_creator_os;
  u32 s_rev_level;
  u16 s_def_resuid;
  u16 s_def_resgid;
  u32 s_first_ino;
  u16 s_inode_size;
  u16 s_block_group_nr;
  u32 s_feature_compat;
  u32 s_feature_incompat;
  u32 s_feature_ro_compat;
  u8  s_uuid[16];
  char s_volume_name[16];
  u16 s_reserved_gdt_blocks;
  u16 s_desc_size;
  u32 s_default_mount_opts;
  u32 s_mkfs_time;
  u32 s_backup_bgs[2];
  u8  s_log_groups_per_flex;
  u32 s_error_count;
};

/* Per-group descriptor (trimmed). */
struct ext4_group_desc {
  u32 bg_block_bitmap;
  u32 bg_inode_bitmap;
  u32 bg_inode_table;
  u16 bg_free_blocks_count;
  u16 bg_free_inodes_count;
  u16 bg_used_dirs_count;
  u16 bg_flags;
};

#endif
