
#include "fsdep_libc.h"
#include "btrfs_fs.h"

#define EINVAL 22

/* Extracts the value part of an "opt=value" token, or 0. */
static char *btrfs_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Mount option handling (btrfs_parse_options). The max_inline bound is
 * the headline cross-component dependency: a mount parameter limited by
 * a creation parameter through the superblock.
 */
int btrfs_parse_options(int argc, char **argv, struct btrfs_sb *sb) {
  long max_inline = 2048;
  long commit_interval = 30;
  long thread_pool = 8;
  int compress = 0;
  int autodefrag = 0;
  int nodatacow = 0;
  int nodatasum = 0;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strncmp(argv[i], "max_inline=", 11) == 0) {
      max_inline = parse_num(btrfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "commit=", 7) == 0) {
      commit_interval = parse_num(btrfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "thread_pool=", 12) == 0) {
      thread_pool = parse_num(btrfs_opt_value(argv[i]));
    } else if (strcmp(argv[i], "compress") == 0) {
      compress = 1;
    } else if (strcmp(argv[i], "autodefrag") == 0) {
      autodefrag = 1;
    } else if (strcmp(argv[i], "nodatacow") == 0) {
      nodatacow = 1;
    } else if (strcmp(argv[i], "nodatasum") == 0) {
      nodatasum = 1;
    }
  }

  if (commit_interval < 1 || commit_interval > 300) {
    return -EINVAL;
  }
  if (thread_pool < 1 || thread_pool > 256) {
    return -EINVAL;
  }
  /* nodatacow implies nodatasum; enabling checksums without CoW is
   * rejected. */
  if (nodatacow && !nodatasum) {
    com_err("btrfs", "nodatacow requires nodatasum");
    return -EINVAL;
  }
  if (compress && nodatacow) {
    com_err("btrfs", "compression is incompatible with nodatacow");
    return -EINVAL;
  }
  /* The cross-component bound: inline extents must fit in a tree node. */
  if (max_inline > sb->sb_nodesize) {
    com_err("btrfs", "max_inline cannot exceed the node size");
    return -EINVAL;
  }
  return autodefrag >= 0 ? 0 : -1;
}

/*
 * Superblock validation at mount (btrfs_validate_super).
 */
int btrfs_validate_super(struct btrfs_sb *sb) {
  if (sb->sb_magicnum != BTRFS_SB_MAGIC) {
    return -EINVAL;
  }
  if (sb->sb_sectorsize < 4096 || sb->sb_sectorsize > 65536) {
    return -EINVAL;
  }
  if (sb->sb_nodesize < BTRFS_MIN_NODESIZE || sb->sb_nodesize > BTRFS_MAX_NODESIZE) {
    return -EINVAL;
  }
  if (sb->sb_nodesize < sb->sb_sectorsize) {
    return -EINVAL;
  }
  if (sb->sb_num_devices < 1) {
    return -EINVAL;
  }
  return 0;
}
