
#include "fsdep_libc.h"
#include "xfs_fs.h"

/*
 * mkfs.xfs: option parsing, validation, superblock fill.
 */
int mkfs_xfs_main(int argc, char **argv, struct xfs_sb *sb) {
  long blocksize = 4096;
  long inodesize = 512;
  long agcount = 4;
  long logblocks = 2560;
  long imaxpct = 25;
  long fs_blocks = 0;
  int crc = 1;
  int ftype = 1;
  int reflink = 1;
  int rmapbt = 0;
  int bigtime = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "b:i:d:l:p:m:")) != -1) {
    switch (c) {
      case 'b':
        blocksize = parse_num(optarg);
        break;
      case 'i':
        inodesize = parse_num(optarg);
        break;
      case 'd':
        agcount = parse_num(optarg);
        break;
      case 'l':
        logblocks = parse_num(optarg);
        break;
      case 'p':
        imaxpct = parse_num(optarg);
        break;
      case 'm':
        if (strcmp(optarg, "crc=0") == 0) {
          crc = 0;
        } else if (strcmp(optarg, "reflink=1") == 0) {
          reflink = 1;
        } else if (strcmp(optarg, "reflink=0") == 0) {
          reflink = 0;
        } else if (strcmp(optarg, "rmapbt=1") == 0) {
          rmapbt = 1;
        } else if (strcmp(optarg, "bigtime=1") == 0) {
          bigtime = 1;
        }
        break;
      default:
        usage();
        break;
    }
  }

  fs_blocks = strtol(argv[optind], 0, 10);

  /* ---- Self dependencies. ---- */
  if (blocksize < XFS_MIN_BLOCKSIZE || blocksize > XFS_MAX_BLOCKSIZE) {
    usage();
  }
  if (blocksize & (blocksize - 1)) {
    usage();
  }
  if (inodesize < 256 || inodesize > 2048) {
    usage();
  }
  if (agcount < 1 || agcount > XFS_MAX_AGCOUNT) {
    usage();
  }
  if (logblocks < 512 || logblocks > 1048576) {
    usage();
  }
  if (imaxpct < 0 || imaxpct > 100) {
    usage();
  }

  /* ---- Cross-parameter dependencies (the v5 feature matrix). ---- */
  if (reflink && !crc) {
    fatal_error("reflink requires the crc (v5) format");
  }
  if (rmapbt && !crc) {
    fatal_error("rmapbt requires the crc (v5) format");
  }
  if (bigtime && !crc) {
    fatal_error("bigtime requires the crc (v5) format");
  }
  if (inodesize * 2 > blocksize) {
    fatal_error("inode size cannot exceed half the block size");
  }
  if (fs_blocks < agcount * XFS_MIN_AG_BLOCKS) {
    fatal_error("too many allocation groups for the device size");
  }

  /* ---- Persist the configuration (the CCD bridge writes). ---- */
  sb->sb_magicnum = XFS_SB_MAGIC;
  sb->sb_blocksize = blocksize;
  sb->sb_dblocks = fs_blocks;
  sb->sb_agcount = agcount;
  sb->sb_agblocks = fs_blocks / agcount;
  sb->sb_inodesize = inodesize;
  sb->sb_logblocks = logblocks;
  sb->sb_imax_pct = imaxpct;
  sb->sb_fdblocks = fs_blocks - logblocks - 64;
  sb->sb_features |= (crc ? XFS_FEAT_CRC : 0);
  sb->sb_features |= (ftype ? XFS_FEAT_FTYPE : 0);
  sb->sb_features |= (reflink ? XFS_FEAT_REFLINK : 0);
  sb->sb_features |= (rmapbt ? XFS_FEAT_RMAPBT : 0);
  sb->sb_features |= (bigtime ? XFS_FEAT_BIGTIME : 0);
  return 0;
}
