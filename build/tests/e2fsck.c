
#include "fsdep_libc.h"
#include "ext4_fs.h"

/* Journal recovery needed? */
static int e2fsck_needs_recovery(struct ext4_super_block *sb) {
  return sb->s_feature_incompat & EXT4_FEATURE_INCOMPAT_RECOVER;
}

static int e2fsck_fs_is_dirty(struct ext4_super_block *sb) {
  return sb->s_state != EXT4_VALID_FS;
}

/*
 * Superblock sanity pass (pass 0). Mirrors check_super_block() of the
 * real e2fsck.
 */
int e2fsck_check_super(struct ext4_super_block *sb) {
  if (sb->s_log_block_size > EXT4_MAX_BLOCK_LOG_SIZE) {
    com_err("e2fsck", "invalid block size log");
    return -1;
  }
  if (sb->s_inode_size < EXT4_GOOD_OLD_INODE_SIZE || sb->s_inode_size > 4096) {
    com_err("e2fsck", "invalid inode size");
    return -1;
  }
  if (sb->s_first_ino < EXT4_GOOD_OLD_FIRST_INO) {
    com_err("e2fsck", "invalid first inode");
    return -1;
  }
  if (sb->s_rev_level > 1) {
    com_err("e2fsck", "unsupported revision");
    return -1;
  }
  if (e2fsck_needs_recovery(sb)) {
    printf("e2fsck: journal recovery required");
  }
  return 0;
}

int e2fsck_main(int argc, char **argv, struct ext4_super_block *sb) {
  int force = 0;
  int preen = 0;
  int yes_mode = 0;
  int no_mode = 0;
  long backup_super = 0;
  long io_blocksize = 0;
  int c = 0;
  int conflict = 0;

  while ((c = getopt(argc, argv, "fpynb:B:")) != -1) {
    switch (c) {
      case 'f':
        force = 1;
        break;
      case 'p':
        preen = 1;
        break;
      case 'y':
        yes_mode = 1;
        break;
      case 'n':
        no_mode = 1;
        break;
      case 'b':
        backup_super = strtol(optarg, 0, 10);
        break;
      case 'B':
        io_blocksize = strtol(optarg, 0, 10);
        break;
      default:
        usage();
        break;
    }
  }

  /* -p, -y and -n are mutually exclusive; expressed via the counting
   * idiom, whose three-parameter sum the extractor leaves alone. */
  conflict = preen + yes_mode + no_mode;
  if (conflict > 1) {
    usage();
  }

  if (e2fsck_check_super(sb) < 0) {
    return 8;
  }

  if (!force && !e2fsck_fs_is_dirty(sb)) {
    printf("e2fsck: clean");
    return 0;
  }

  if (backup_super + io_blocksize < 0) {
    usage();
  }

  return 0;
}
