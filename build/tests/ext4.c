
#include "fsdep_libc.h"
#include "ext4_fs.h"

#define EINVAL 22
#define EXT4_MAX_STRIPE 2097152
#define EXT4_MAX_COMMIT_INTERVAL 300
#define EXT4_MAX_BATCH_TIME 60000
#define EXT4_MAX_INODE_READAHEAD 1073741824

/* ---- Feature accessors (the kernel's ext4_has_feature_* idiom). ---- */

static int ext4_check_magic(struct ext4_super_block *es) {
  return es->s_magic == EXT4_SUPER_MAGIC;
}

static int ext4_has_feature_extents(struct ext4_super_block *es) {
  return es->s_feature_incompat & EXT4_FEATURE_INCOMPAT_EXTENTS;
}

static int ext4_has_feature_64bit(struct ext4_super_block *es) {
  return es->s_feature_incompat & EXT4_FEATURE_INCOMPAT_64BIT;
}

static int ext4_has_feature_inline_data(struct ext4_super_block *es) {
  return es->s_feature_incompat & EXT4_FEATURE_INCOMPAT_INLINE_DATA;
}

static int ext4_has_feature_bigalloc(struct ext4_super_block *es) {
  return es->s_feature_ro_compat & EXT4_FEATURE_RO_COMPAT_BIGALLOC;
}

static int ext4_has_feature_journal(struct ext4_super_block *es) {
  return es->s_feature_compat & EXT4_FEATURE_COMPAT_HAS_JOURNAL;
}

/* Extracts the value part of an "opt=value" token, or 0. */
static char *ext4_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Parses the mount option string (pre-split into tokens). Numeric
 * tunables are range-checked here, mirroring the kernel's
 * handle_mount_opt().
 */
int ext4_parse_options(int argc, char **argv) {
  long commit_interval = 5;
  long stripe = 0;
  long inode_readahead_blks = 32;
  long max_batch_time = 15000;
  long min_batch_time = 0;
  int dax = 0;
  int delalloc = 1;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strncmp(argv[i], "commit=", 7) == 0) {
      commit_interval = parse_num(ext4_opt_value(argv[i]));
    } else if (strncmp(argv[i], "stripe=", 7) == 0) {
      stripe = parse_num(ext4_opt_value(argv[i]));
    } else if (strncmp(argv[i], "inode_readahead_blks=", 21) == 0) {
      inode_readahead_blks = parse_num(ext4_opt_value(argv[i]));
    } else if (strncmp(argv[i], "max_batch_time=", 15) == 0) {
      max_batch_time = parse_num(ext4_opt_value(argv[i]));
    } else if (strncmp(argv[i], "min_batch_time=", 15) == 0) {
      min_batch_time = strtol(ext4_opt_value(argv[i]), 0, 10);
    } else if (strcmp(argv[i], "dax") == 0) {
      dax = 1;
    } else if (strcmp(argv[i], "nodelalloc") == 0) {
      delalloc = 0;
    }
  }

  if (commit_interval < 1 || commit_interval > EXT4_MAX_COMMIT_INTERVAL) {
    return -EINVAL;
  }
  if (stripe < 0 || stripe > EXT4_MAX_STRIPE) {
    return -EINVAL;
  }
  if (inode_readahead_blks > EXT4_MAX_INODE_READAHEAD ||
      (inode_readahead_blks & (inode_readahead_blks - 1))) {
    return -EINVAL;
  }
  if (max_batch_time < 0 || max_batch_time > EXT4_MAX_BATCH_TIME) {
    return -EINVAL;
  }

  return dax + delalloc + min_batch_time >= 0 ? 0 : -1;
}

/*
 * Superblock validation at mount time: the kernel-level half of the
 * "validated at both user level and kernel level" observation (paper §2).
 */
int ext4_fill_super(struct ext4_super_block *es, int dax, int data_journal, int data_writeback,
                    int noload, int ro, int journal_checksum, int journal_async_commit,
                    int usrjquota, int jqfmt, int dioread_nolock, int delalloc, int nobh) {
  long blocksize = 0;

  if (!ext4_check_magic(es)) {
    return -EINVAL;
  }

  /* ---- On-disk field domains (persistent form of mke2fs parameters). */
  if (es->s_log_block_size > EXT4_MAX_BLOCK_LOG_SIZE) {
    com_err("ext4", "bad blocksize log");
    return -EINVAL;
  }
  blocksize = EXT4_MIN_BLOCK_SIZE << es->s_log_block_size;
  if (blocksize > EXT4_MAX_BLOCK_SIZE) {
    return -EINVAL;
  }
  if (es->s_inode_size < EXT4_GOOD_OLD_INODE_SIZE || es->s_inode_size > 4096) {
    com_err("ext4", "unsupported inode size");
    return -EINVAL;
  }
  if (es->s_rev_level > 1) {
    com_err("ext4", "revision level too high");
    return -EINVAL;
  }
  if (es->s_first_ino < EXT4_GOOD_OLD_FIRST_INO) {
    return -EINVAL;
  }
  if (es->s_desc_size < 32 || es->s_desc_size > 64) {
    return -EINVAL;
  }
  if (es->s_first_data_block > 1) {
    return -EINVAL;
  }

  /* ---- Mount option interactions (kernel-enforced CPDs). ---- */
  if (dax && data_journal) {
    com_err("ext4", "dax is incompatible with data=journal");
    return -EINVAL;
  }
  if (noload && !ro) {
    com_err("ext4", "noload requires a read-only mount");
    return -EINVAL;
  }
  if (journal_async_commit && !journal_checksum) {
    com_err("ext4", "journal_async_commit requires journal_checksum");
    return -EINVAL;
  }
  if (usrjquota && !jqfmt) {
    com_err("ext4", "journaled quota requires jqfmt");
    return -EINVAL;
  }
  if (dioread_nolock && data_journal) {
    com_err("ext4", "dioread_nolock is incompatible with data=journal");
    return -EINVAL;
  }
  if (delalloc && data_journal) {
    com_err("ext4", "delalloc is incompatible with data=journal");
    return -EINVAL;
  }
  if (nobh && !data_writeback) {
    com_err("ext4", "nobh only makes sense with data=writeback");
    return -EINVAL;
  }

  /* dax needs a page-sized block size; the analyzer correctly refuses to
   * turn an equality against a derived value into a range (a known false
   * negative discussed in EXPERIMENTS.md). */
  if (dax && blocksize != 4096) {
    return -EINVAL;
  }

  if (es->s_state != EXT4_VALID_FS) {
    printf("ext4: warning: mounting unchecked fs");
  }

  return 0;
}

/* Group-descriptor level validation, the second half of the mount path. */
int ext4_check_descriptors(struct ext4_super_block *es) {
  if (es->s_inodes_per_group < 8 || es->s_inodes_per_group > 65536) {
    return -EINVAL;
  }
  if (es->s_reserved_gdt_blocks > 1024) {
    return -EINVAL;
  }
  if (es->s_log_cluster_size > EXT4_MAX_BLOCK_LOG_SIZE) {
    return -EINVAL;
  }
  if (ext4_has_feature_bigalloc(es)) {
    printf("ext4: bigalloc enabled");
  }
  return 0;
}

/*
 * Post-mount bookkeeping. The batch-time relation checked here is dead at
 * first mount (defaults are clamped earlier); it only matters after the
 * superblock has been through an offline tool — the ground truth marks
 * the extraction spurious for the create-and-mount scenario.
 */
int ext4_setup_super(struct ext4_super_block *es, long min_batch_time, long max_batch_time) {
  if (min_batch_time > max_batch_time) {
    return -EINVAL;
  }
  es->s_mnt_count = es->s_mnt_count + 1;
  if (ext4_has_feature_journal(es)) {
    printf("ext4: journal enabled");
  }
  return 0;
}

/* Remount: re-validates the mutable option set. */
int ext4_remount(struct ext4_super_block *es, int data_journal, int auto_da_alloc) {
  if (data_journal && auto_da_alloc) {
    com_err("ext4", "auto_da_alloc is incompatible with data=journal");
    return -EINVAL;
  }
  if (!ext4_check_magic(es)) {
    return -EINVAL;
  }
  return 0;
}

/* Pre-flight checks for the online defragmentation ioctl (e4defrag). */
int ext4_online_defrag_check(struct ext4_super_block *es, int data_journal, int auto_da_alloc) {
  if (!ext4_has_feature_extents(es)) {
    return -EINVAL;
  }
  if (data_journal && auto_da_alloc) {
    com_err("ext4", "auto_da_alloc is incompatible with data=journal");
    return -EINVAL;
  }
  if (ext4_has_feature_inline_data(es)) {
    printf("ext4: defrag skips inline files");
  }
  return 0;
}

/*
 * Validation of an unmounted image before offline tools touch it. The
 * umount step of the resize2fs/e2fsck scenarios routes through here.
 */
int ext4_validate_super_offline(struct ext4_super_block *es) {
  if (es->s_error_count > 65535) {
    return -EINVAL;
  }
  if (es->s_blocks_count < es->s_first_data_block + 8) {
    return -EINVAL;
  }
  if (ext4_has_feature_64bit(es)) {
    printf("ext4: 64bit image");
  }
  return 0;
}
