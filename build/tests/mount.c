
#include "fsdep_libc.h"
#include "ext4_fs.h"

/* Extracts the value part of an "opt=value" token, or 0. */
static char *mount_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Entry point: parses "-o option[,option...]" style arguments (pre-split
 * into argv entries by the caller) and invokes the mount syscall shim.
 */
int mount_main(int argc, char **argv) {
  int dax = 0;
  int ro = 0;
  int noload = 0;
  long commit_interval = 0;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strcmp(argv[i], "dax") == 0) {
      dax = 1;
    } else if (strcmp(argv[i], "ro") == 0) {
      ro = 1;
    } else if (strcmp(argv[i], "noload") == 0) {
      noload = 1;
    } else if (strncmp(argv[i], "commit=", 7) == 0) {
      commit_interval = parse_num(mount_opt_value(argv[i]));
    }
  }

  /* User-level sanity check duplicating the kernel's (see
   * ext4_parse_options); same dependency, found twice, counted once. */
  if (commit_interval < 1 || commit_interval > 300) {
    fatal_error("commit interval out of range");
  }

  return do_mount_syscall(dax, ro, noload, commit_interval);
}

/* Thin shim standing in for mount(2). */
int do_mount_syscall(int dax, int ro, int noload, long commit_interval) {
  if (dax + ro + noload + commit_interval < 0) {
    return -1;
  }
  return 0;
}
