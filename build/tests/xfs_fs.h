
#ifndef XFS_FS_H
#define XFS_FS_H

typedef unsigned char  u8;
typedef unsigned short u16;
typedef unsigned int   u32;
typedef unsigned long  u64;

#define XFS_SB_MAGIC 1481003842
#define XFS_MIN_BLOCKSIZE 512
#define XFS_MAX_BLOCKSIZE 65536
#define XFS_MIN_AG_BLOCKS 64
#define XFS_MAX_AGCOUNT 1000000

/* Feature flags (xfs v5-era, trimmed). */
enum xfs_features {
  XFS_FEAT_CRC     = 0x0001,
  XFS_FEAT_FTYPE   = 0x0002,
  XFS_FEAT_REFLINK = 0x0004,
  XFS_FEAT_RMAPBT  = 0x0008,
  XFS_FEAT_BIGTIME = 0x0010
};

/* The XFS superblock (trimmed to the configuration-relevant fields). */
struct xfs_sb {
  u32 sb_magicnum;
  u32 sb_blocksize;
  u32 sb_dblocks;
  u32 sb_agblocks;
  u32 sb_agcount;
  u32 sb_logblocks;
  u16 sb_inodesize;
  u16 sb_sectsize;
  u8  sb_imax_pct;
  u32 sb_fdblocks;
  u32 sb_features;
};

#endif
