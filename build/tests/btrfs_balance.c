
#include "fsdep_libc.h"
#include "btrfs_fs.h"

/*
 * btrfs-balance: online restriping. Converting to a redundant profile
 * depends on the device count chosen at mkfs time — a control CCD.
 */
int btrfs_balance_main(int argc, char **argv, struct btrfs_sb *sb) {
  long convert_to = -1;
  int to_raid1 = 0;
  int to_raid5 = 0;
  int force = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "15f")) != -1) {
    switch (c) {
      case '1':
        to_raid1 = 1;
        convert_to = BTRFS_RAID_RAID1;
        break;
      case '5':
        to_raid5 = 1;
        convert_to = BTRFS_RAID_RAID5;
        break;
      case 'f':
        force = 1;
        break;
      default:
        usage();
        break;
    }
  }

  if (to_raid1 && sb->sb_num_devices < 2) {
    fatal_error("balance: raid1 conversion needs at least two devices");
    return -1;
  }
  if (to_raid5 && !(sb->sb_features & BTRFS_FEAT_RAID56)) {
    fatal_error("balance: raid5 conversion needs the raid56 feature");
    return -1;
  }
  if (!force && convert_to == sb->sb_data_profile) {
    printf("balance: profile unchanged, nothing to do");
    return 0;
  }

  if (sb->sb_features & BTRFS_FEAT_MIXED_BG) {
    printf("balance: mixed block groups restripe data and metadata together");
  }

  sb->sb_data_profile = convert_to;
  return 0;
}
