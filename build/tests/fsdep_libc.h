
#ifndef FSDEP_LIBC_H
#define FSDEP_LIBC_H

/* Minimal libc surface used by the corpus components. */

char *optarg;
int optind;

int getopt(int argc, char **argv, const char *optstring);
long parse_num(char *text);
long parse_size(char *text);
long strtol(char *text, char **end, int base);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, long n);
long strlen(const char *s);
int printf(const char *fmt, ...);
int fprintf_err(const char *fmt, ...);
void usage(void);
void fatal_error(const char *msg);
void com_err(const char *who, const char *msg);
void exit(int code);

#endif
