file(REMOVE_RECURSE
  "CMakeFiles/preprocessor_test.dir/preprocessor_test.cpp.o"
  "CMakeFiles/preprocessor_test.dir/preprocessor_test.cpp.o.d"
  "preprocessor_test"
  "preprocessor_test.pdb"
  "preprocessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
