# Empty dependencies file for preprocessor_test.
# This may be replaced when dependencies are built.
