# Empty dependencies file for fsim_resize_test.
# This may be replaced when dependencies are built.
