file(REMOVE_RECURSE
  "CMakeFiles/fsim_resize_test.dir/fsim_resize_test.cpp.o"
  "CMakeFiles/fsim_resize_test.dir/fsim_resize_test.cpp.o.d"
  "fsim_resize_test"
  "fsim_resize_test.pdb"
  "fsim_resize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
