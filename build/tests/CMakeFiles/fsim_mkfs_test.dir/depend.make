# Empty dependencies file for fsim_mkfs_test.
# This may be replaced when dependencies are built.
