file(REMOVE_RECURSE
  "CMakeFiles/fsim_mkfs_test.dir/fsim_mkfs_test.cpp.o"
  "CMakeFiles/fsim_mkfs_test.dir/fsim_mkfs_test.cpp.o.d"
  "fsim_mkfs_test"
  "fsim_mkfs_test.pdb"
  "fsim_mkfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_mkfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
