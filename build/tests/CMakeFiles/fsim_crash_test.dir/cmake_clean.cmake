file(REMOVE_RECURSE
  "CMakeFiles/fsim_crash_test.dir/fsim_crash_test.cpp.o"
  "CMakeFiles/fsim_crash_test.dir/fsim_crash_test.cpp.o.d"
  "fsim_crash_test"
  "fsim_crash_test.pdb"
  "fsim_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
