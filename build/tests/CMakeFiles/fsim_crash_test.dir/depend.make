# Empty dependencies file for fsim_crash_test.
# This may be replaced when dependencies are built.
