# Empty dependencies file for fsim_tune_test.
# This may be replaced when dependencies are built.
