file(REMOVE_RECURSE
  "CMakeFiles/fsim_tune_test.dir/fsim_tune_test.cpp.o"
  "CMakeFiles/fsim_tune_test.dir/fsim_tune_test.cpp.o.d"
  "fsim_tune_test"
  "fsim_tune_test.pdb"
  "fsim_tune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_tune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
