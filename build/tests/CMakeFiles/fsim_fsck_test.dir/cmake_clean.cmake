file(REMOVE_RECURSE
  "CMakeFiles/fsim_fsck_test.dir/fsim_fsck_test.cpp.o"
  "CMakeFiles/fsim_fsck_test.dir/fsim_fsck_test.cpp.o.d"
  "fsim_fsck_test"
  "fsim_fsck_test.pdb"
  "fsim_fsck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_fsck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
