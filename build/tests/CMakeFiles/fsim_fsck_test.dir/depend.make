# Empty dependencies file for fsim_fsck_test.
# This may be replaced when dependencies are built.
