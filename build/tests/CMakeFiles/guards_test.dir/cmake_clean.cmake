file(REMOVE_RECURSE
  "CMakeFiles/guards_test.dir/guards_test.cpp.o"
  "CMakeFiles/guards_test.dir/guards_test.cpp.o.d"
  "guards_test"
  "guards_test.pdb"
  "guards_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
