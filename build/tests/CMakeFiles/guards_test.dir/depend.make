# Empty dependencies file for guards_test.
# This may be replaced when dependencies are built.
