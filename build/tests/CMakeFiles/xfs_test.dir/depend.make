# Empty dependencies file for xfs_test.
# This may be replaced when dependencies are built.
