file(REMOVE_RECURSE
  "CMakeFiles/xfs_test.dir/xfs_test.cpp.o"
  "CMakeFiles/xfs_test.dir/xfs_test.cpp.o.d"
  "xfs_test"
  "xfs_test.pdb"
  "xfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
