file(REMOVE_RECURSE
  "CMakeFiles/fsim_mount_test.dir/fsim_mount_test.cpp.o"
  "CMakeFiles/fsim_mount_test.dir/fsim_mount_test.cpp.o.d"
  "fsim_mount_test"
  "fsim_mount_test.pdb"
  "fsim_mount_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_mount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
