# Empty dependencies file for fsim_mount_test.
# This may be replaced when dependencies are built.
