# Empty dependencies file for fsim_journal_test.
# This may be replaced when dependencies are built.
