file(REMOVE_RECURSE
  "CMakeFiles/fsim_journal_test.dir/fsim_journal_test.cpp.o"
  "CMakeFiles/fsim_journal_test.dir/fsim_journal_test.cpp.o.d"
  "fsim_journal_test"
  "fsim_journal_test.pdb"
  "fsim_journal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
