# Empty dependencies file for fsim_defrag_test.
# This may be replaced when dependencies are built.
