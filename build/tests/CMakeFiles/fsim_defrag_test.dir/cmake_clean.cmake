file(REMOVE_RECURSE
  "CMakeFiles/fsim_defrag_test.dir/fsim_defrag_test.cpp.o"
  "CMakeFiles/fsim_defrag_test.dir/fsim_defrag_test.cpp.o.d"
  "fsim_defrag_test"
  "fsim_defrag_test.pdb"
  "fsim_defrag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_defrag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
