file(REMOVE_RECURSE
  "CMakeFiles/btrfs_test.dir/btrfs_test.cpp.o"
  "CMakeFiles/btrfs_test.dir/btrfs_test.cpp.o.d"
  "btrfs_test"
  "btrfs_test.pdb"
  "btrfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
