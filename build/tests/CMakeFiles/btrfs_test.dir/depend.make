# Empty dependencies file for btrfs_test.
# This may be replaced when dependencies are built.
