# Empty dependencies file for fsim_device_test.
# This may be replaced when dependencies are built.
