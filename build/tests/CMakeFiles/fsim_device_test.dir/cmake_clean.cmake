file(REMOVE_RECURSE
  "CMakeFiles/fsim_device_test.dir/fsim_device_test.cpp.o"
  "CMakeFiles/fsim_device_test.dir/fsim_device_test.cpp.o.d"
  "fsim_device_test"
  "fsim_device_test.pdb"
  "fsim_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
