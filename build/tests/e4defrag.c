
#include "fsdep_libc.h"
#include "ext4_fs.h"

/* Fragmentation score of a file; placeholder for the extent-tree walk. */
static long defrag_fragmentation_score(struct ext4_super_block *sb, long ino) {
  long score = ino % 7;
  if (sb->s_magic != EXT4_SUPER_MAGIC) {
    return -1;
  }
  return score;
}

/* Whether the mounted fs supports online defrag at all. */
static int defrag_check_fs(struct ext4_super_block *sb) {
  if (sb->s_magic != EXT4_SUPER_MAGIC) {
    return -1;
  }
  return 0;
}

int e4defrag_main(int argc, char **argv, struct ext4_super_block *sb) {
  int stat_only = 0;
  int verbose = 0;
  int c = 0;
  long ino = 0;
  long moved = 0;

  while ((c = getopt(argc, argv, "cv")) != -1) {
    switch (c) {
      case 'c':
        stat_only = 1;
        break;
      case 'v':
        verbose = 1;
        break;
      default:
        usage();
        break;
    }
  }

  if (defrag_check_fs(sb) < 0) {
    fatal_error("not an ext4 filesystem");
  }

  for (ino = 12; ino < 64; ino = ino + 1) {
    long score = defrag_fragmentation_score(sb, ino);
    if (score > 3) {
      if (stat_only) {
        printf("would defragment inode");
      } else {
        moved = moved + 1;
      }
      if (verbose) {
        printf("inode score high");
      }
    }
  }

  return moved > 0 ? 0 : 1;
}
