
#include "fsdep_libc.h"
#include "btrfs_fs.h"

/*
 * mkfs.btrfs: option parsing, validation, superblock fill.
 */
int mkfs_btrfs_main(int argc, char **argv, struct btrfs_sb *sb) {
  long sectorsize = 4096;
  long nodesize = 16384;
  long num_devices = 1;
  long total_bytes = 0;
  long data_profile = BTRFS_RAID_SINGLE;
  long meta_profile = BTRFS_RAID_DUP;
  int mixed_bg = 0;
  int raid56 = 0;
  int no_holes = 0;
  int c = 0;

  while ((c = getopt(argc, argv, "s:n:d:m:M:")) != -1) {
    switch (c) {
      case 's':
        sectorsize = parse_num(optarg);
        break;
      case 'n':
        nodesize = parse_num(optarg);
        break;
      case 'd':
        data_profile = strtol(optarg, 0, 10);
        break;
      case 'm':
        meta_profile = strtol(optarg, 0, 10);
        break;
      case 'M':
        mixed_bg = 1;
        break;
      default:
        usage();
        break;
    }
  }

  num_devices = strtol(argv[optind], 0, 10);
  total_bytes = strtol(argv[optind + 1], 0, 10);

  /* ---- Self dependencies. ---- */
  if (sectorsize < 4096 || sectorsize > 65536) {
    usage();
  }
  if (nodesize < BTRFS_MIN_NODESIZE || nodesize > BTRFS_MAX_NODESIZE) {
    usage();
  }
  if (nodesize & (nodesize - 1)) {
    usage();
  }
  if (num_devices < 1 || num_devices > 1024) {
    usage();
  }

  /* ---- Cross-parameter dependencies. ---- */
  if (nodesize < sectorsize) {
    fatal_error("node size cannot be smaller than the sector size");
  }
  if (mixed_bg && nodesize != sectorsize) {
    fatal_error("mixed block groups require nodesize == sectorsize");
  }
  if (data_profile == BTRFS_RAID_RAID1 && num_devices < 2) {
    fatal_error("raid1 data needs at least two devices");
  }
  if (data_profile == BTRFS_RAID_RAID5 && num_devices < 3) {
    fatal_error("raid5 data needs at least three devices");
  }
  if (raid56 && !no_holes) {
    /* historical: raid56 shipped gated on other incompat bits */
    fatal_error("raid56 requires the no_holes format");
  }

  /* ---- Persist (the CCD bridge writes). ---- */
  sb->sb_magicnum = BTRFS_SB_MAGIC;
  sb->sb_sectorsize = sectorsize;
  sb->sb_nodesize = nodesize;
  sb->sb_num_devices = num_devices;
  sb->sb_total_bytes = total_bytes;
  sb->sb_data_profile = data_profile;
  sb->sb_meta_profile = meta_profile;
  sb->sb_features |= (mixed_bg ? BTRFS_FEAT_MIXED_BG : 0);
  sb->sb_features |= (raid56 ? BTRFS_FEAT_RAID56 : 0);
  sb->sb_features |= (no_holes ? BTRFS_FEAT_NO_HOLES : 0);
  return 0;
}
