
#include "fsdep_libc.h"
#include "ext4_fs.h"

#define MKE2FS_MIN_INODE_SIZE 128
#define MKE2FS_MAX_INODE_SIZE 4096
#define MKE2FS_MIN_INODE_RATIO 1024
#define MKE2FS_MAX_INODE_RATIO 67108864
#define MKE2FS_MIN_BLOCKS_PER_GROUP 256
#define MKE2FS_MAX_BLOCKS_PER_GROUP 65528

/*
 * Translates a block size in bytes into the on-disk log2 encoding
 * (1024 << s_log_block_size == block size).
 */
static long blocksize_to_log(long blocksize) {
  long log = 0;
  long size = 1024;
  while (size < blocksize) {
    size = size * 2;
    log = log + 1;
  }
  return log;
}

/*
 * Persists the validated configuration into the superblock. This is where
 * creation-time parameters become on-disk metadata: the shared structure
 * that later stages (mount, resize2fs, e2fsck) read back.
 */
static void mke2fs_write_super(struct ext4_super_block *sb, long fs_blocks, long blocksize,
                               long inode_size, long reserved_ratio, long blocks_per_group,
                               long inode_ratio, long revision, long flex_bg_size,
                               long cluster_size, char *volume_label, long resize_limit,
                               int meta_bg, int resize_inode, int sparse_super2, int bigalloc,
                               int extents, int has_64bit, int quota, int has_journal,
                               int journal_dev, int uninit_bg, int metadata_csum, int flex_bg,
                               int inline_data, int encrypt) {
  long i = 0;
  long label_len = strlen(volume_label);

  sb->s_magic = EXT4_SUPER_MAGIC;
  sb->s_state = EXT4_VALID_FS;
  sb->s_rev_level = revision;
  sb->s_blocks_count = fs_blocks;
  sb->s_log_block_size = blocksize_to_log(blocksize) ;
  sb->s_log_cluster_size = blocksize_to_log(cluster_size ? cluster_size : blocksize);
  sb->s_first_data_block = (blocksize == EXT4_MIN_BLOCK_SIZE) ? 1 : 0;
  sb->s_inode_size = inode_size;
  sb->s_blocks_per_group = blocks_per_group;
  sb->s_clusters_per_group = blocks_per_group;
  sb->s_inodes_per_group = blocks_per_group * blocksize / inode_ratio;
  sb->s_inodes_count = fs_blocks / (inode_ratio / blocksize + 1) + 16;
  sb->s_r_blocks_count = reserved_ratio * 1024;
  sb->s_free_blocks_count = fs_blocks - 64;
  sb->s_free_inodes_count = sb->s_inodes_count - 16;
  sb->s_first_ino = EXT4_GOOD_OLD_FIRST_INO;
  sb->s_max_mnt_count = 65535;
  sb->s_mnt_count = 0;
  sb->s_desc_size = has_64bit ? 64 : 32;
  sb->s_log_groups_per_flex = flex_bg ? flex_bg_size : 0;
  sb->s_reserved_gdt_blocks = resize_limit / 1024;

  for (i = 0; i < label_len && i < 15; i = i + 1) {
    sb->s_volume_name[i] = volume_label[i];
  }

  /* Feature bitmaps: one data-dependent write per feature so the taint
   * analysis sees which parameter controls which bit. */
  sb->s_feature_compat |= (has_journal ? EXT4_FEATURE_COMPAT_HAS_JOURNAL : 0);
  sb->s_feature_compat |= (resize_inode ? EXT4_FEATURE_COMPAT_RESIZE_INODE : 0);
  sb->s_feature_compat |= (sparse_super2 ? EXT4_FEATURE_COMPAT_SPARSE_SUPER2 : 0);
  sb->s_feature_incompat |= (meta_bg ? EXT4_FEATURE_INCOMPAT_META_BG : 0);
  sb->s_feature_incompat |= (extents ? EXT4_FEATURE_INCOMPAT_EXTENTS : 0);
  sb->s_feature_incompat |= (has_64bit ? EXT4_FEATURE_INCOMPAT_64BIT : 0);
  sb->s_feature_incompat |= (flex_bg ? EXT4_FEATURE_INCOMPAT_FLEX_BG : 0);
  sb->s_feature_incompat |= (inline_data ? EXT4_FEATURE_INCOMPAT_INLINE_DATA : 0);
  sb->s_feature_incompat |= (encrypt ? EXT4_FEATURE_INCOMPAT_ENCRYPT : 0);
  sb->s_feature_incompat |= (journal_dev ? EXT4_FEATURE_INCOMPAT_JOURNAL_DEV : 0);
  sb->s_feature_ro_compat |= (quota ? EXT4_FEATURE_RO_COMPAT_QUOTA : 0);
  sb->s_feature_ro_compat |= (bigalloc ? EXT4_FEATURE_RO_COMPAT_BIGALLOC : 0);
  sb->s_feature_ro_compat |= (uninit_bg ? EXT4_FEATURE_RO_COMPAT_GDT_CSUM : 0);
  sb->s_feature_ro_compat |= (metadata_csum ? EXT4_FEATURE_RO_COMPAT_METADATA_CSUM : 0);

  if (sparse_super2) {
    sb->s_backup_bgs[0] = 1;
    sb->s_backup_bgs[1] = fs_blocks / blocks_per_group - 1;
  }
}

/*
 * Entry point: option parsing and validation, mirroring mke2fs(8).
 */
int mke2fs_main(int argc, char **argv, struct ext4_super_block *sb) {
  long blocksize = 4096;
  long inode_size = 256;
  long inode_ratio = 16384;
  long reserved_ratio = 5;
  long blocks_per_group = 32768;
  long flex_bg_size = 16;
  long revision = 1;
  long cluster_size = 0;
  long resize_limit = 0;
  long fs_blocks = 0;
  char *volume_label = "";

  int meta_bg = 0;
  int resize_inode = 1;
  int sparse_super2 = 0;
  int bigalloc = 0;
  int extents = 1;
  int has_64bit = 0;
  int quota = 0;
  int has_journal = 1;
  int journal_dev = 0;
  int uninit_bg = 0;
  int metadata_csum = 0;
  int flex_bg = 1;
  int inline_data = 0;
  int encrypt = 0;

  int c = 0;

  while ((c = getopt(argc, argv, "b:I:i:m:g:G:r:C:E:L:O:")) != -1) {
    switch (c) {
      case 'b':
        blocksize = parse_num(optarg);
        break;
      case 'I':
        inode_size = parse_num(optarg);
        break;
      case 'i':
        inode_ratio = parse_num(optarg);
        break;
      case 'm':
        reserved_ratio = parse_num(optarg);
        break;
      case 'g':
        blocks_per_group = parse_num(optarg);
        break;
      case 'G':
        flex_bg_size = parse_num(optarg);
        break;
      case 'r':
        revision = parse_num(optarg);
        break;
      case 'C':
        cluster_size = strtol(optarg, 0, 10);
        break;
      case 'E':
        resize_limit = strtol(optarg, 0, 10);
        break;
      case 'L':
        volume_label = optarg;
        break;
      case 'O':
        if (strcmp(optarg, "meta_bg") == 0) {
          meta_bg = 1;
        } else if (strcmp(optarg, "^resize_inode") == 0) {
          resize_inode = 0;
        } else if (strcmp(optarg, "sparse_super2") == 0) {
          sparse_super2 = 1;
        } else if (strcmp(optarg, "bigalloc") == 0) {
          bigalloc = 1;
        } else if (strcmp(optarg, "^extent") == 0) {
          extents = 0;
        } else if (strcmp(optarg, "64bit") == 0) {
          has_64bit = 1;
        } else if (strcmp(optarg, "quota") == 0) {
          quota = 1;
        } else if (strcmp(optarg, "^has_journal") == 0) {
          has_journal = 0;
        } else if (strcmp(optarg, "journal_dev") == 0) {
          journal_dev = 1;
        } else if (strcmp(optarg, "uninit_bg") == 0) {
          uninit_bg = 1;
        } else if (strcmp(optarg, "metadata_csum") == 0) {
          metadata_csum = 1;
        } else if (strcmp(optarg, "^flex_bg") == 0) {
          flex_bg = 0;
        } else if (strcmp(optarg, "inline_data") == 0) {
          inline_data = 1;
        } else if (strcmp(optarg, "encrypt") == 0) {
          encrypt = 1;
        }
        break;
      default:
        usage();
        break;
    }
  }

  fs_blocks = strtol(argv[optind], 0, 10);

  /* ---- Self-dependencies: each parameter's own domain. ---- */
  if (blocksize < EXT4_MIN_BLOCK_SIZE || blocksize > EXT4_MAX_BLOCK_SIZE) {
    usage();
  }
  if (inode_size < MKE2FS_MIN_INODE_SIZE || inode_size > MKE2FS_MAX_INODE_SIZE) {
    usage();
  }
  if (inode_ratio < MKE2FS_MIN_INODE_RATIO || inode_ratio > MKE2FS_MAX_INODE_RATIO) {
    usage();
  }
  if (reserved_ratio < 0 || reserved_ratio > 50) {
    usage();
  }
  if (blocks_per_group < MKE2FS_MIN_BLOCKS_PER_GROUP ||
      blocks_per_group > MKE2FS_MAX_BLOCKS_PER_GROUP) {
    usage();
  }
  if (blocks_per_group % 8) {
    usage();
  }
  if (flex_bg_size & (flex_bg_size - 1)) {
    usage();
  }
  if (revision < 0 || revision > 1) {
    usage();
  }

  /* ---- Cross-parameter dependencies: feature interactions. ---- */
  if (meta_bg && resize_inode) {
    fatal_error("meta_bg and resize_inode cannot both be enabled");
  }
  if (bigalloc && !extents) {
    fatal_error("bigalloc requires extents");
  }
  if (sparse_super2 && resize_inode) {
    fatal_error("sparse_super2 and resize_inode are incompatible");
  }
  if (has_64bit && !extents) {
    fatal_error("64bit requires extents");
  }
  if (quota && !has_journal) {
    fatal_error("quota requires a journal");
  }
  if (journal_dev && has_journal) {
    fatal_error("journal_dev conflicts with an internal journal");
  }
  if (cluster_size && !bigalloc) {
    fatal_error("-C requires -O bigalloc");
  }
  if (uninit_bg && metadata_csum) {
    fatal_error("uninit_bg and metadata_csum are incompatible");
  }
  if (resize_limit && !resize_inode) {
    fatal_error("-E resize requires resize_inode");
  }
  if (flex_bg_size && !flex_bg) {
    fatal_error("-G requires flex_bg");
  }
  if (inline_data && !extents) {
    fatal_error("inline_data requires extents");
  }
  if (encrypt && bigalloc) {
    fatal_error("encrypt and bigalloc are incompatible");
  }

  /* ---- Cross-parameter value dependencies. ---- */
  if (inode_size > blocksize) {
    fatal_error("inode size cannot exceed the block size");
  }
  if (blocks_per_group > blocksize * 8) {
    fatal_error("blocks per group limited by one bitmap block");
  }
  if (cluster_size && cluster_size < blocksize) {
    fatal_error("cluster size cannot be smaller than the block size");
  }
  if (inode_ratio < blocksize) {
    fatal_error("bytes-per-inode cannot be smaller than the block size");
  }

  mke2fs_write_super(sb, fs_blocks, blocksize, inode_size, reserved_ratio, blocks_per_group,
                     inode_ratio, revision, flex_bg_size, cluster_size, volume_label,
                     resize_limit, meta_bg, resize_inode, sparse_super2, bigalloc, extents,
                     has_64bit, quota, has_journal, journal_dev, uninit_bg, metadata_csum,
                     flex_bg, inline_data, encrypt);
  return 0;
}
