
#include "fsdep_libc.h"
#include "ext4_fs.h"

#define RESIZE_RESERVED_SLACK 256

/* True when the image was not cleanly unmounted. */
static int resize_fs_is_dirty(struct ext4_super_block *sb) {
  return sb->s_state != EXT4_VALID_FS;
}

/* Minimum shrink target computed from the current allocation. */
static long resize_calc_min_size(struct ext4_super_block *sb) {
  return sb->s_blocks_count - sb->s_free_blocks_count + 64;
}

/*
 * Geometry validation before any resize work starts.
 */
int resize2fs_check_geometry(struct ext4_super_block *sb, long new_blocks, int online,
                             int force) {
  long min_blocks = sb->s_r_blocks_count + RESIZE_RESERVED_SLACK;

  if (new_blocks < min_blocks) {
    fatal_error("target size below the reserved minimum");
    return -1;
  }
  if (online && !(sb->s_feature_compat & EXT4_FEATURE_COMPAT_RESIZE_INODE)) {
    fatal_error("online growing requires the resize_inode feature");
    return -1;
  }
  if (!force && resize_fs_is_dirty(sb)) {
    fatal_error("filesystem is dirty; run e2fsck or use -f");
    return -1;
  }
  return 0;
}

/*
 * Recomputes the free-block accounting of the last block group after the
 * block count changed. With sparse_super2, the historical bug computed
 * the last group's free count BEFORE the new blocks were added (paper
 * Figure 1); the simulator in src/fsim reproduces the corruption, this
 * corpus mirrors the code shape the analyzer sees.
 */
void resize2fs_adjust_last_group(struct ext4_super_block *sb, long added_blocks) {
  long last_free = 0;
  if (sb->s_feature_compat & EXT4_FEATURE_COMPAT_SPARSE_SUPER2) {
    last_free = sb->s_free_blocks_count;
    sb->s_free_blocks_count = last_free + added_blocks;
  } else {
    sb->s_free_blocks_count = sb->s_free_blocks_count + added_blocks;
  }
}

/* Human-readable summary printed before the work starts. */
void resize2fs_print_summary(struct ext4_super_block *sb, long new_blocks) {
  if (sb->s_volume_name[0]) {
    printf("resizing labelled filesystem");
  }
  printf("target block count set");
}

static void resize2fs_grow(struct ext4_super_block *sb, long new_blocks) {
  long added = new_blocks - sb->s_blocks_count;
  sb->s_blocks_count = new_blocks;
  resize2fs_adjust_last_group(sb, added);
}

static void resize2fs_shrink(struct ext4_super_block *sb, long new_blocks) {
  long min_size = resize_calc_min_size(sb);
  if (new_blocks < min_size) {
    fatal_error("cannot shrink below the allocated size");
    return;
  }
  sb->s_blocks_count = new_blocks;
}

/*
 * Entry point: the size argument is given in bytes/sectors and converted
 * using the block size mke2fs chose — a cross-component value dependency
 * the extractor finds through the s_log_block_size bridge.
 */
int resize2fs_main(int argc, char **argv, struct ext4_super_block *sb) {
  long new_blocks = 0;
  int online = 0;
  int force = 0;
  int minimize = 0;
  int c = 0;
  long size_spec = 0;

  while ((c = getopt(argc, argv, "Mfo")) != -1) {
    switch (c) {
      case 'M':
        minimize = 1;
        break;
      case 'f':
        force = 1;
        break;
      case 'o':
        online = 1;
        break;
      default:
        usage();
        break;
    }
  }

  size_spec = parse_size(argv[optind]);
  new_blocks = size_spec >> sb->s_log_block_size;

  if (minimize) {
    new_blocks = resize_calc_min_size(sb);
  }

  if (resize2fs_check_geometry(sb, new_blocks, online, force) < 0) {
    return 1;
  }

  resize2fs_print_summary(sb, new_blocks);

  if (new_blocks == sb->s_blocks_count) {
    printf("nothing to do");
    return 0;
  }

  if (new_blocks > sb->s_blocks_count) {
    resize2fs_grow(sb, new_blocks);
  } else {
    resize2fs_shrink(sb, new_blocks);
  }

  return 0;
}
