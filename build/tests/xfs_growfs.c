
#include "fsdep_libc.h"
#include "xfs_fs.h"

/*
 * xfs_growfs: online growing. XFS famously cannot shrink; the grow path
 * extends the last allocation group and appends new ones, both decisions
 * gated by mkfs.xfs-era geometry read back from the superblock.
 */
int xfs_growfs_main(int argc, char **argv, struct xfs_sb *sb) {
  long new_dblocks = 0;
  int dry_run = 0;
  int c = 0;
  long size_spec = 0;

  while ((c = getopt(argc, argv, "n")) != -1) {
    switch (c) {
      case 'n':
        dry_run = 1;
        break;
      default:
        usage();
        break;
    }
  }

  size_spec = parse_size(argv[optind]);
  new_dblocks = size_spec / sb->sb_blocksize;

  if (new_dblocks < sb->sb_dblocks) {
    fatal_error("xfs_growfs: shrinking is not supported");
    return -1;
  }

  if (sb->sb_features & XFS_FEAT_RMAPBT) {
    printf("growfs: extending the reverse-mapping btree per AG");
  }

  if (dry_run) {
    printf("growfs: dry run, no changes written");
    return 0;
  }

  if (new_dblocks == sb->sb_dblocks) {
    printf("growfs: nothing to do");
    return 0;
  }

  sb->sb_dblocks = new_dblocks;
  sb->sb_fdblocks = sb->sb_fdblocks + (new_dblocks - sb->sb_dblocks);
  return 0;
}
