
#include "fsdep_libc.h"
#include "xfs_fs.h"

#define EINVAL 22

static int xfs_sb_good_magic(struct xfs_sb *sb) {
  return sb->sb_magicnum == XFS_SB_MAGIC;
}

static int xfs_has_rmapbt(struct xfs_sb *sb) {
  return sb->sb_features & XFS_FEAT_RMAPBT;
}

/* Extracts the value part of an "opt=value" token, or 0. */
static char *xfs_opt_value(char *token) {
  long i = 0;
  while (token[i]) {
    if (token[i] == '=') {
      return token + i + 1;
    }
    i = i + 1;
  }
  return 0;
}

/*
 * Mount option parsing (xfs_parseargs in the real kernel).
 */
int xfs_parse_options(int argc, char **argv) {
  long logbufs = 8;
  long logbsize = 32768;
  int wsync = 0;
  int noalign = 0;
  int norecovery = 0;
  int ro = 0;
  int i = 0;

  for (i = 1; i < argc; i = i + 1) {
    if (strncmp(argv[i], "logbufs=", 8) == 0) {
      logbufs = parse_num(xfs_opt_value(argv[i]));
    } else if (strncmp(argv[i], "logbsize=", 9) == 0) {
      logbsize = parse_num(xfs_opt_value(argv[i]));
    } else if (strcmp(argv[i], "wsync") == 0) {
      wsync = 1;
    } else if (strcmp(argv[i], "noalign") == 0) {
      noalign = 1;
    } else if (strcmp(argv[i], "norecovery") == 0) {
      norecovery = 1;
    } else if (strcmp(argv[i], "ro") == 0) {
      ro = 1;
    }
  }

  if (logbufs < 2 || logbufs > 8) {
    return -EINVAL;
  }
  if (logbsize < 16384 || logbsize > 262144) {
    return -EINVAL;
  }
  if (norecovery && !ro) {
    com_err("xfs", "norecovery requires a read-only mount");
    return -EINVAL;
  }
  return wsync + noalign >= 0 ? 0 : -1;
}

/*
 * Superblock validation at mount (xfs_validate_sb_common).
 */
int xfs_mount_validate_sb(struct xfs_sb *sb) {
  if (!xfs_sb_good_magic(sb)) {
    return -EINVAL;
  }
  if (sb->sb_blocksize < XFS_MIN_BLOCKSIZE || sb->sb_blocksize > XFS_MAX_BLOCKSIZE) {
    return -EINVAL;
  }
  if (sb->sb_inodesize < 256 || sb->sb_inodesize > 2048) {
    return -EINVAL;
  }
  if (sb->sb_agcount < 1) {
    return -EINVAL;
  }
  if (sb->sb_imax_pct > 100) {
    return -EINVAL;
  }
  if (sb->sb_dblocks < sb->sb_agblocks) {
    return -EINVAL;
  }
  return 0;
}
