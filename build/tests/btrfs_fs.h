
#ifndef BTRFS_FS_H
#define BTRFS_FS_H

typedef unsigned char  u8;
typedef unsigned short u16;
typedef unsigned int   u32;
typedef unsigned long  u64;

#define BTRFS_SB_MAGIC 1817327701
#define BTRFS_MIN_NODESIZE 4096
#define BTRFS_MAX_NODESIZE 65536

enum btrfs_features {
  BTRFS_FEAT_MIXED_BG   = 0x0001,
  BTRFS_FEAT_EXTREF     = 0x0002,
  BTRFS_FEAT_RAID56     = 0x0004,
  BTRFS_FEAT_SKINNY     = 0x0008,
  BTRFS_FEAT_NO_HOLES   = 0x0010
};

enum btrfs_raid_profile {
  BTRFS_RAID_SINGLE = 0,
  BTRFS_RAID_DUP    = 1,
  BTRFS_RAID_RAID0  = 2,
  BTRFS_RAID_RAID1  = 3,
  BTRFS_RAID_RAID5  = 4
};

struct btrfs_sb {
  u32 sb_magicnum;
  u32 sb_sectorsize;
  u32 sb_nodesize;
  u32 sb_num_devices;
  u32 sb_total_bytes;
  u32 sb_data_profile;
  u32 sb_meta_profile;
  u32 sb_features;
};

#endif
