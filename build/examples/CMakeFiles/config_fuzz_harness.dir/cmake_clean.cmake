file(REMOVE_RECURSE
  "CMakeFiles/config_fuzz_harness.dir/config_fuzz_harness.cpp.o"
  "CMakeFiles/config_fuzz_harness.dir/config_fuzz_harness.cpp.o.d"
  "config_fuzz_harness"
  "config_fuzz_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_fuzz_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
