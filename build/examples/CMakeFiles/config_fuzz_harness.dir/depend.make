# Empty dependencies file for config_fuzz_harness.
# This may be replaced when dependencies are built.
