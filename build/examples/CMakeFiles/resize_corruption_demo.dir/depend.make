# Empty dependencies file for resize_corruption_demo.
# This may be replaced when dependencies are built.
