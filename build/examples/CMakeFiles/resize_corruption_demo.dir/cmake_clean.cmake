file(REMOVE_RECURSE
  "CMakeFiles/resize_corruption_demo.dir/resize_corruption_demo.cpp.o"
  "CMakeFiles/resize_corruption_demo.dir/resize_corruption_demo.cpp.o.d"
  "resize_corruption_demo"
  "resize_corruption_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resize_corruption_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
