file(REMOVE_RECURSE
  "CMakeFiles/doc_audit.dir/doc_audit.cpp.o"
  "CMakeFiles/doc_audit.dir/doc_audit.cpp.o.d"
  "doc_audit"
  "doc_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
