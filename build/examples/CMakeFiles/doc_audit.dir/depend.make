# Empty dependencies file for doc_audit.
# This may be replaced when dependencies are built.
