# Empty dependencies file for future_xfs.
# This may be replaced when dependencies are built.
