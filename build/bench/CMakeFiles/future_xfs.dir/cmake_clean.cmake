file(REMOVE_RECURSE
  "CMakeFiles/future_xfs.dir/future_xfs.cpp.o"
  "CMakeFiles/future_xfs.dir/future_xfs.cpp.o.d"
  "future_xfs"
  "future_xfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_xfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
