file(REMOVE_RECURSE
  "CMakeFiles/usage_condocck.dir/usage_condocck.cpp.o"
  "CMakeFiles/usage_condocck.dir/usage_condocck.cpp.o.d"
  "usage_condocck"
  "usage_condocck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_condocck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
