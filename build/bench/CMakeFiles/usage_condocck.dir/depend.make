# Empty dependencies file for usage_condocck.
# This may be replaced when dependencies are built.
