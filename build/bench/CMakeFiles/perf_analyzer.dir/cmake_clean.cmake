file(REMOVE_RECURSE
  "CMakeFiles/perf_analyzer.dir/perf_analyzer.cpp.o"
  "CMakeFiles/perf_analyzer.dir/perf_analyzer.cpp.o.d"
  "perf_analyzer"
  "perf_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
