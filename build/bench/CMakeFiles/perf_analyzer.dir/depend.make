# Empty dependencies file for perf_analyzer.
# This may be replaced when dependencies are built.
