file(REMOVE_RECURSE
  "CMakeFiles/usage_conbugck.dir/usage_conbugck.cpp.o"
  "CMakeFiles/usage_conbugck.dir/usage_conbugck.cpp.o.d"
  "usage_conbugck"
  "usage_conbugck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_conbugck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
