# Empty dependencies file for usage_conbugck.
# This may be replaced when dependencies are built.
