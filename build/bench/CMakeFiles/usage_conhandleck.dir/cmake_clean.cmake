file(REMOVE_RECURSE
  "CMakeFiles/usage_conhandleck.dir/usage_conhandleck.cpp.o"
  "CMakeFiles/usage_conhandleck.dir/usage_conhandleck.cpp.o.d"
  "usage_conhandleck"
  "usage_conhandleck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_conhandleck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
