# Empty dependencies file for usage_conhandleck.
# This may be replaced when dependencies are built.
