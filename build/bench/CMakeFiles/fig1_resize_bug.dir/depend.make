# Empty dependencies file for fig1_resize_bug.
# This may be replaced when dependencies are built.
