file(REMOVE_RECURSE
  "CMakeFiles/fig1_resize_bug.dir/fig1_resize_bug.cpp.o"
  "CMakeFiles/fig1_resize_bug.dir/fig1_resize_bug.cpp.o.d"
  "fig1_resize_bug"
  "fig1_resize_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_resize_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
