# Empty dependencies file for table5_extraction.
# This may be replaced when dependencies are built.
