file(REMOVE_RECURSE
  "CMakeFiles/table5_extraction.dir/table5_extraction.cpp.o"
  "CMakeFiles/table5_extraction.dir/table5_extraction.cpp.o.d"
  "table5_extraction"
  "table5_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
