# Empty dependencies file for future_btrfs.
# This may be replaced when dependencies are built.
