file(REMOVE_RECURSE
  "CMakeFiles/future_btrfs.dir/future_btrfs.cpp.o"
  "CMakeFiles/future_btrfs.dir/future_btrfs.cpp.o.d"
  "future_btrfs"
  "future_btrfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_btrfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
