# Empty dependencies file for table4_taxonomy.
# This may be replaced when dependencies are built.
