file(REMOVE_RECURSE
  "CMakeFiles/table4_taxonomy.dir/table4_taxonomy.cpp.o"
  "CMakeFiles/table4_taxonomy.dir/table4_taxonomy.cpp.o.d"
  "table4_taxonomy"
  "table4_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
