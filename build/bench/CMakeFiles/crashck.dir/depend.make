# Empty dependencies file for crashck.
# This may be replaced when dependencies are built.
