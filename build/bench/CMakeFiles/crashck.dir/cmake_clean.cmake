file(REMOVE_RECURSE
  "CMakeFiles/crashck.dir/crashck.cpp.o"
  "CMakeFiles/crashck.dir/crashck.cpp.o.d"
  "crashck"
  "crashck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crashck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
