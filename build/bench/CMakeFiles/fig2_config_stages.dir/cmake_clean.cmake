file(REMOVE_RECURSE
  "CMakeFiles/fig2_config_stages.dir/fig2_config_stages.cpp.o"
  "CMakeFiles/fig2_config_stages.dir/fig2_config_stages.cpp.o.d"
  "fig2_config_stages"
  "fig2_config_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_config_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
