# Empty dependencies file for fig2_config_stages.
# This may be replaced when dependencies are built.
