# Empty dependencies file for ablation_bridging.
# This may be replaced when dependencies are built.
