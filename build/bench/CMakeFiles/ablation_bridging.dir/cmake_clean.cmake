file(REMOVE_RECURSE
  "CMakeFiles/ablation_bridging.dir/ablation_bridging.cpp.o"
  "CMakeFiles/ablation_bridging.dir/ablation_bridging.cpp.o.d"
  "ablation_bridging"
  "ablation_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
